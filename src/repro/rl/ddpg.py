"""Deep Deterministic Policy Gradient (Lillicrap et al. 2015) agent.

The actor maps the ω-length state window to an m-dimensional weight
vector through a softmax head (the paper's "standard normalisation" that
keeps weights positive and summing to one). The critic estimates
``Q(s, a)`` from the concatenated state and action. Target copies of both
networks are Polyak-averaged each update, and the replay buffer supports
either uniform sampling (the reference algorithm) or the paper's
median-balanced scheme (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError, DataValidationError
from repro.nn import init as init_schemes
from repro.nn import (
    Adam,
    Linear,
    Module,
    StackedLinears,
    Tensor,
    clip_grad_norm,
    mse_loss,
    rowwise_softmax,
)
from repro.obs import OBS
from repro.rl.mdp import (
    EnsembleMDP,
    Transition,
    project_to_simplex,
    project_to_simplex_batch,
)
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.rl.replay import ReplayBuffer


def _action_entropy(weights: np.ndarray) -> float:
    """Shannon entropy of a simplex weight vector (nats).

    0 at a one-hot vertex, ``log(m)`` at the uniform point — the
    telemetry proxy for how concentrated the policy currently is
    (paper Fig. 3 tracks the same collapse of the weight vector).
    """
    w = np.clip(weights, 1e-12, None)
    return float(-np.sum(w * np.log(w)))


class Actor(Module):
    """Policy network π(s|θ): state window → simplex weight vector.

    Logits are squashed with ``logit_scale · tanh`` before the softmax, so
    the policy can approach (but never fully reach) a one-hot vertex —
    gradients through the softmax never vanish and the actor cannot
    irrecoverably saturate early in training.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden: int,
        rng: np.random.Generator,
        logit_scale: float = 3.0,
    ):
        super().__init__()
        self.fc1 = Linear(state_dim, hidden, rng=rng, init="fanin")
        self.fc2 = Linear(hidden, hidden, rng=rng, init="fanin")
        self.out = Linear(hidden, action_dim, rng=rng, init="final")
        self.logit_scale = logit_scale

    def forward(self, state: Tensor) -> Tensor:
        h = self.fc1(state).relu()
        h = self.fc2(h).relu()
        logits = self.out(h).tanh() * self.logit_scale
        return logits.softmax(axis=-1)

    def forward_numpy(self, state: np.ndarray) -> np.ndarray:
        """Graph-free inference for deployment (paper Alg. 1 hot path).

        Identical math to :meth:`forward` but in raw numpy — no autograd
        bookkeeping, an order of magnitude faster per call.
        """
        h = np.maximum(state @ self.fc1.weight.data + self.fc1.bias.data, 0.0)
        h = np.maximum(h @ self.fc2.weight.data + self.fc2.bias.data, 0.0)
        logits = np.tanh(h @ self.out.weight.data + self.out.bias.data)
        logits *= self.logit_scale
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)


class StackedActorParams:
    """Per-layer weight stacks for N same-architecture actors.

    Built once per coalesced serving batch via :meth:`from_actors`;
    layer positions whose objects are still shared across every actor
    (pristine tenant clones substituting the template's layers) collapse
    to a single broadcast slice instead of an N-way copy. Feeding the
    stack through :meth:`forward` reproduces each actor's
    :meth:`Actor.forward_numpy` output bit-for-bit.
    """

    __slots__ = ("fc1", "fc2", "out", "logit_scale", "size")

    def __init__(
        self,
        fc1: StackedLinears,
        fc2: StackedLinears,
        out: StackedLinears,
        logit_scale: np.ndarray,
        size: int,
    ):
        self.fc1 = fc1
        self.fc2 = fc2
        self.out = out
        self.logit_scale = logit_scale
        self.size = size

    @classmethod
    def from_actors(cls, actors: "list[Actor]") -> "StackedActorParams":
        if not actors:
            raise DataValidationError("need at least one actor to stack")
        return cls(
            StackedLinears.from_layers([actor.fc1 for actor in actors]),
            StackedLinears.from_layers([actor.fc2 for actor in actors]),
            StackedLinears.from_layers([actor.out for actor in actors]),
            np.asarray(
                [actor.logit_scale for actor in actors], dtype=np.float64
            )[:, None],
            len(actors),
        )

    def forward(self, states: np.ndarray) -> np.ndarray:
        """One stacked forward for all N tenants (no autograd).

        Per-slice matmuls plus elementwise activations: row ``i`` equals
        ``actors[i].forward_numpy(states[i][None, :])[0]`` to the ulp.
        """
        h = np.maximum(self.fc1.apply(states), 0.0)
        h = np.maximum(self.fc2.apply(h), 0.0)
        logits = np.tanh(self.out.apply(h))
        logits *= self.logit_scale
        return rowwise_softmax(logits)


class Critic(Module):
    """Value network Q(s, a|φ): joint state-action value estimate."""

    def __init__(
        self, state_dim: int, action_dim: int, hidden: int, rng: np.random.Generator
    ):
        super().__init__()
        self.fc1 = Linear(state_dim + action_dim, hidden, rng=rng, init="fanin")
        self.fc2 = Linear(hidden, hidden, rng=rng, init="fanin")
        self.out = Linear(hidden, 1, rng=rng, init="final")

    def forward(self, state: Tensor, action: Tensor) -> Tensor:
        joint = Tensor.concatenate([state, action], axis=1)
        h = self.fc1(joint).relu()
        h = self.fc2(h).relu()
        return self.out(h)


@dataclass
class DDPGConfig:
    """Hyper-parameters (paper defaults: γ=0.9, α=0.01, 100 episodes)."""

    gamma: float = 0.9
    actor_lr: float = 0.002
    critic_lr: float = 0.01
    tau: float = 0.01
    hidden: int = 64
    batch_size: int = 32
    buffer_capacity: int = 10_000
    noise_sigma: float = 0.15
    noise_decay: float = 0.97
    noise_type: str = "gaussian"  # "gaussian" (decaying) or "ou" (correlated)
    sampling: str = "median"  # "median" (paper Eq. 4) or "uniform"
    grad_clip: float = 5.0
    warmup_steps: int = 200
    logit_scale: float = 3.0
    twin_critic: bool = False  # TD3-style clipped double-Q (extension)
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {self.tau}")
        if self.batch_size < 2:
            raise ConfigurationError(
                f"batch_size must be >= 2, got {self.batch_size}"
            )
        if self.sampling not in ("median", "uniform"):
            raise ConfigurationError(
                f"sampling must be 'median' or 'uniform', got {self.sampling!r}"
            )
        if self.noise_type not in ("gaussian", "ou"):
            raise ConfigurationError(
                f"noise_type must be 'gaussian' or 'ou', got {self.noise_type!r}"
            )


@dataclass
class TrainingHistory:
    """Per-episode learning diagnostics (drives the Fig. 2 benches)."""

    episode_rewards: List[float] = field(default_factory=list)
    critic_losses: List[float] = field(default_factory=list)
    actor_objectives: List[float] = field(default_factory=list)

    @property
    def n_episodes(self) -> int:
        return len(self.episode_rewards)

    def moving_average(self, span: int = 5) -> np.ndarray:
        """Smoothed episode rewards (for learning-curve plots).

        ``span`` is clamped to the number of recorded episodes, so a
        span larger than the history degrades to the overall mean; an
        empty history returns an empty array.
        """
        if span < 1:
            raise ConfigurationError(f"span must be >= 1, got {span}")
        rewards = np.asarray(self.episode_rewards, dtype=np.float64)
        if rewards.size == 0:
            return rewards
        width = min(span, rewards.size)
        kernel = np.ones(width) / width
        return np.convolve(rewards, kernel, mode="valid")


class DDPGAgent:
    """Actor-critic learner for the ensemble-aggregation MDP."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        config: Optional[DDPGConfig] = None,
        *,
        init_weights: bool = True,
    ):
        self.config = config if config is not None else DDPGConfig()
        self.config.validate()
        if state_dim < 1 or action_dim < 1:
            raise ConfigurationError("state_dim and action_dim must be >= 1")
        self.state_dim = state_dim
        self.action_dim = action_dim

        rng = np.random.default_rng(self.config.seed)
        self._rng = rng
        # ``init_weights=False`` builds a zero-weight skeleton: every
        # parameter must then be overwritten by the caller (template
        # copy or checkpoint restore). The agent's own RNG stays seeded
        # but has consumed no init draws, so this is only sound when
        # its state is also about to be restored/overwritten.
        init_rng = rng if init_weights else init_schemes.ZeroDrawGenerator()
        hidden = self.config.hidden
        scale = self.config.logit_scale
        self.actor = Actor(state_dim, action_dim, hidden, init_rng, logit_scale=scale)
        self.critic = Critic(state_dim, action_dim, hidden, init_rng)
        self.target_actor = Actor(state_dim, action_dim, hidden, init_rng, logit_scale=scale)
        self.target_critic = Critic(state_dim, action_dim, hidden, init_rng)
        if init_weights:
            self.target_actor.copy_from(self.actor)
            self.target_critic.copy_from(self.critic)

        # Optional TD3-style second critic: the TD target takes the
        # minimum of the two target critics, damping overestimation.
        self.critic2: Optional[Critic] = None
        self.target_critic2: Optional[Critic] = None
        if self.config.twin_critic:
            self.critic2 = Critic(state_dim, action_dim, hidden, init_rng)
            self.target_critic2 = Critic(state_dim, action_dim, hidden, init_rng)
            if init_weights:
                self.target_critic2.copy_from(self.critic2)

        self.actor_opt = Adam(self.actor.parameters(), lr=self.config.actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=self.config.critic_lr)
        self.critic2_opt: Optional[Adam] = (
            Adam(self.critic2.parameters(), lr=self.config.critic_lr)
            if self.critic2 is not None
            else None
        )
        self.buffer = ReplayBuffer(self.config.buffer_capacity, seed=self.config.seed)
        if self.config.noise_type == "ou":
            self.noise = OrnsteinUhlenbeckNoise(
                action_dim,
                sigma=self.config.noise_sigma,
                seed=self.config.seed + 1,
            )
        else:
            self.noise = GaussianNoise(
                action_dim,
                sigma=self.config.noise_sigma,
                decay=self.config.noise_decay,
                seed=self.config.seed + 1,
            )
        self.history = TrainingHistory()
        self._last_actor_grad_norm: Optional[float] = None
        # Number of gradient updates actually applied. Serving clones
        # that never trained (``updates_applied == 0``) still hold the
        # template's exact weights, which unlocks the light spill path.
        self.updates_applied = 0

    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, explore: bool = False) -> np.ndarray:
        """Deterministic policy output, optionally perturbed with noise."""
        state = np.asarray(state, dtype=np.float64)
        if state.shape != (self.state_dim,):
            raise DataValidationError(
                f"state must have shape ({self.state_dim},), got {state.shape}"
            )
        weights = self.actor.forward_numpy(state[None, :])[0]
        if explore:
            weights = project_to_simplex(weights + self.noise.sample())
        return weights

    @staticmethod
    def act_batch(
        states: np.ndarray, params: StackedActorParams
    ) -> np.ndarray:
        """Greedy policy outputs for N ``(state, actor)`` pairs at once.

        ``states`` is ``(N, state_dim)`` aligned with the actors stacked
        into ``params``; row ``i`` of the result is bit-identical to
        ``agents[i].act(states[i], explore=False)``. Inference only —
        exploration noise would consume per-agent RNG draws and cannot
        be batched without changing the stream.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2 or states.shape[0] != params.size:
            raise DataValidationError(
                f"states must have shape ({params.size}, state_dim), "
                f"got {states.shape}"
            )
        return params.forward(states)

    @staticmethod
    def policy_weights_batch(
        states: np.ndarray, params: StackedActorParams
    ) -> np.ndarray:
        """Batched :meth:`policy_weights`: one stacked forward + row-wise
        simplex projection, bit-identical per row to the serial path."""
        return project_to_simplex_batch(
            DDPGAgent.act_batch(states, params)
        )

    # ------------------------------------------------------------------
    def update(self) -> None:
        """One gradient step on critic and actor from a replay batch."""
        if len(self.buffer) < self.config.batch_size:
            return
        states, actions, rewards, next_states, dones = self.buffer.sample(
            self.config.batch_size, strategy=self.config.sampling
        )

        # Critic: y = r + γ(1−done)·Q'(s', π'(s'));  minimise (Q(s,a) − y)².
        # With twin critics the target is min(Q1', Q2') (TD3-style).
        next_actions = self.target_actor(Tensor(next_states))
        target_q = self.target_critic(Tensor(next_states), next_actions).numpy()[:, 0]
        if self.target_critic2 is not None:
            target_q2 = self.target_critic2(
                Tensor(next_states), next_actions
            ).numpy()[:, 0]
            target_q = np.minimum(target_q, target_q2)
        y = rewards + self.config.gamma * (1.0 - dones) * target_q
        self.critic.zero_grad()
        q = self.critic(Tensor(states), Tensor(actions))
        critic_loss = mse_loss(q, Tensor(y[:, None]))
        critic_loss.backward()
        clip_grad_norm(self.critic.parameters(), self.config.grad_clip)
        self.critic_opt.step()
        if self.critic2 is not None:
            self.critic2.zero_grad()
            q2 = self.critic2(Tensor(states), Tensor(actions))
            critic2_loss = mse_loss(q2, Tensor(y[:, None]))
            critic2_loss.backward()
            clip_grad_norm(self.critic2.parameters(), self.config.grad_clip)
            self.critic2_opt.step()

        # Actor: maximise Q(s, π(s)) — gradients flow through the critic
        # into the policy; only the actor's parameters are stepped.
        self.actor.zero_grad()
        self.critic.zero_grad()
        policy_actions = self.actor(Tensor(states))
        actor_objective = self.critic(Tensor(states), policy_actions).mean()
        loss = -actor_objective
        loss.backward()
        actor_grad_norm = clip_grad_norm(
            self.actor.parameters(), self.config.grad_clip
        )
        self.actor_opt.step()
        self.critic.zero_grad()  # discard critic grads from the actor pass

        # Polyak-averaged target updates.
        self.target_actor.soft_update_from(self.actor, self.config.tau)
        self.target_critic.soft_update_from(self.critic, self.config.tau)
        if self.critic2 is not None:
            self.target_critic2.soft_update_from(self.critic2, self.config.tau)

        critic_loss_value = critic_loss.item()
        actor_objective_value = actor_objective.item()
        self.history.critic_losses.append(critic_loss_value)
        self.history.actor_objectives.append(actor_objective_value)
        self._last_actor_grad_norm = actor_grad_norm
        self.updates_applied += 1
        if OBS.enabled:
            registry = OBS.registry
            registry.counter("repro_ddpg_updates_total").inc()
            registry.histogram("repro_ddpg_critic_loss").observe(
                critic_loss_value
            )
            registry.histogram("repro_ddpg_actor_grad_norm").observe(
                actor_grad_norm
            )

    # ------------------------------------------------------------------
    def train(
        self,
        env: EnsembleMDP,
        episodes: int = 100,
        max_iterations: Optional[int] = 100,
        updates_per_step: int = 1,
        checkpoint=None,
    ) -> TrainingHistory:
        """Run the training loop (paper: max.ep = max.iter = 100).

        Each episode resets the environment, rolls the policy with
        exploration noise, stores transitions, and performs
        ``updates_per_step`` gradient updates per environment step.
        Returns the accumulated :class:`TrainingHistory`.

        ``checkpoint`` accepts a
        :class:`repro.runtime.TrainingCheckpointer`: training then
        snapshots the agent's full resumable state at the configured
        episode period, and — when the checkpointer is in resume mode —
        restores the newest valid snapshot before the first episode and
        continues from the episode after it, bit-identically to an
        uninterrupted run. The hook is duck-typed (``restore_into`` /
        ``after_episode``) so this module needs no runtime import.
        """
        if episodes < 1:
            raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
        with OBS.span("ddpg.train"):
            start_episode = 0
            if checkpoint is not None:
                start_episode = checkpoint.restore_into(self)
            self._warmup(env)
            for episode_index in range(start_episode, episodes):
                state = env.reset()
                self.noise.reset()
                total_reward = 0.0
                steps = env.steps_per_episode
                if max_iterations is not None:
                    steps = min(steps, max_iterations)
                telemetry_on = OBS.enabled
                entropy_sum, entropy_steps = 0.0, 0
                loss_start = len(self.history.critic_losses)
                for _ in range(steps):
                    action = self.act(state, explore=True)
                    if telemetry_on:
                        entropy_sum += _action_entropy(action)
                        entropy_steps += 1
                    next_state, reward, done = env.step(action)
                    self.buffer.push(
                        Transition(state, action, reward, next_state, done)
                    )
                    total_reward += reward
                    state = next_state
                    for _ in range(updates_per_step):
                        self.update()
                    if done:
                        break
                self.history.episode_rewards.append(total_reward / max(steps, 1))
                if telemetry_on:
                    self._record_episode_telemetry(
                        episode_index, entropy_sum, entropy_steps, loss_start
                    )
                if checkpoint is not None:
                    checkpoint.after_episode(
                        self, episode_index,
                        final=episode_index == episodes - 1,
                    )
        return self.history

    def _record_episode_telemetry(
        self,
        episode: int,
        entropy_sum: float,
        entropy_steps: int,
        loss_start: int,
    ) -> None:
        """One ``train_episode`` event + registry updates (enabled only).

        Surfaces the paper's Fig. 2 learning-curve signal (per-episode
        mean reward under Eq. 4 median-balanced sampling) plus the
        stability diagnostics around it: mean critic loss over the
        episode's updates, the last actor pre-clip gradient norm, mean
        exploration-action entropy, replay fill, and the Eq. 4 split
        median of the buffered rewards.
        """
        registry = OBS.registry
        mean_reward = self.history.episode_rewards[-1]
        losses = self.history.critic_losses[loss_start:]
        critic_loss = float(np.mean(losses)) if losses else None
        entropy = entropy_sum / entropy_steps if entropy_steps else None
        fill = len(self.buffer)
        reward_median = self.buffer.reward_median() if fill else None
        registry.counter("repro_ddpg_episodes_total").inc()
        registry.gauge("repro_ddpg_replay_fill").set(fill)
        if reward_median is not None:
            registry.gauge("repro_ddpg_replay_reward_median").set(reward_median)
        if entropy is not None:
            registry.histogram("repro_ddpg_action_entropy").observe(entropy)
        OBS.emit(
            "train_episode",
            episode=episode,
            mean_reward=mean_reward,
            critic_loss=critic_loss,
            actor_grad_norm=self._last_actor_grad_norm,
            action_entropy=entropy,
            replay_fill=fill,
            reward_median=reward_median,
        )

    # ------------------------------------------------------------------
    def _warmup(self, env: EnsembleMDP) -> None:
        """Seed the buffer with Dirichlet-random simplex actions.

        Exposes the critic to the whole action space before the
        deterministic policy starts steering data collection, which
        prevents the actor from locking onto a poorly estimated vertex.
        """
        remaining = self.config.warmup_steps - len(self.buffer)
        if remaining <= 0:
            return
        state = env.reset()
        # Alternate concentrated (vertex-like) and diffuse actions.
        while remaining > 0:
            alpha = 0.3 if remaining % 2 == 0 else 1.0
            action = self._rng.dirichlet(np.full(self.action_dim, alpha))
            next_state, reward, done = env.step(action)
            self.buffer.push(Transition(state, action, reward, next_state, done))
            state = env.reset() if done else next_state
            remaining -= 1

    # ------------------------------------------------------------------
    def policy_weights(self, state: np.ndarray) -> np.ndarray:
        """Greedy simplex weights for deployment (paper Alg. 1 line 2/6)."""
        return project_to_simplex(self.act(state, explore=False))

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def _checkpoint_modules(self):
        modules = [
            ("actor", self.actor),
            ("critic", self.critic),
            ("target_actor", self.target_actor),
            ("target_critic", self.target_critic),
        ]
        if self.critic2 is not None:
            modules.append(("critic2", self.critic2))
            modules.append(("target_critic2", self.target_critic2))
        return modules

    def _checkpoint_optimizers(self):
        optimizers = [
            ("actor_opt", self.actor_opt),
            ("critic_opt", self.critic_opt),
        ]
        if self.critic2_opt is not None:
            optimizers.append(("critic2_opt", self.critic2_opt))
        return optimizers

    def checkpoint_state(
        self, *, pristine_light: bool = False
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Capture *every* source of future behaviour, bit-exactly.

        Arrays: the four (or six, with a twin critic) network state
        dicts, the Adam moment slots, the replay ring, the OU process
        value (when used), and the :class:`TrainingHistory` series.
        Meta: Adam step counters, replay cursors, RNG bit-generator
        states (warmup/Dirichlet, replay sampler, noise), the decayed
        noise sigma, and the last actor gradient norm. A restored agent
        continues training bit-identically to one that was never
        interrupted (``tests/integration/test_resume_determinism.py``).

        ``pristine_light=True`` elides the network and optimizer arrays
        when no gradient update has ever been applied
        (``updates_applied == 0``) — they are byte-for-byte the template
        the agent was cloned from, and the restorer re-copies them from
        that template instead. ``meta["pristine"]`` records which form
        was written; agents that have trained always get the full
        snapshot regardless of the flag.
        """
        pristine = pristine_light and self.updates_applied == 0
        arrays: Dict[str, np.ndarray] = {}
        opt_meta: Dict[str, Any] = {}
        if not pristine:
            for prefix, module in self._checkpoint_modules():
                for name, value in module.state_dict().items():
                    arrays[f"{prefix}.{name}"] = value
            for prefix, optimizer in self._checkpoint_optimizers():
                slot_arrays, slot_meta = optimizer.checkpoint_state()
                for name, value in slot_arrays.items():
                    arrays[f"{prefix}.{name}"] = value
                opt_meta[prefix] = slot_meta
        buffer_arrays, buffer_meta = self.buffer.checkpoint_state()
        for name, value in buffer_arrays.items():
            arrays[f"buffer.{name}"] = value
        noise_arrays, noise_meta = self.noise.checkpoint_state()
        for name, value in noise_arrays.items():
            arrays[f"noise.{name}"] = value
        arrays["history.episode_rewards"] = np.asarray(
            self.history.episode_rewards, dtype=np.float64
        )
        arrays["history.critic_losses"] = np.asarray(
            self.history.critic_losses, dtype=np.float64
        )
        arrays["history.actor_objectives"] = np.asarray(
            self.history.actor_objectives, dtype=np.float64
        )
        meta: Dict[str, Any] = {
            "state_dim": self.state_dim,
            "action_dim": self.action_dim,
            "twin_critic": self.config.twin_critic,
            "rng": self._rng.bit_generator.state,
            "optimizers": opt_meta,
            "buffer": buffer_meta,
            "noise": noise_meta,
            "last_actor_grad_norm": self._last_actor_grad_norm,
            "updates_applied": self.updates_applied,
            "pristine": pristine,
        }
        return arrays, meta

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        """Restore a snapshot from :meth:`checkpoint_state` in place."""
        if (
            int(meta["state_dim"]) != self.state_dim
            or int(meta["action_dim"]) != self.action_dim
        ):
            raise CheckpointError(
                f"agent snapshot is for dims "
                f"({meta['state_dim']}, {meta['action_dim']}); this agent "
                f"has ({self.state_dim}, {self.action_dim})"
            )
        if bool(meta["twin_critic"]) != self.config.twin_critic:
            raise CheckpointError(
                "agent snapshot twin_critic setting does not match "
                "this agent's config"
            )

        def split(prefix: str) -> Dict[str, np.ndarray]:
            cut = len(prefix) + 1
            return {
                name[cut:]: value
                for name, value in arrays.items()
                if name.startswith(prefix + ".")
            }

        pristine = bool(meta.get("pristine", False))
        if not pristine:
            for prefix, module in self._checkpoint_modules():
                try:
                    module.load_state_dict(split(prefix))
                except (KeyError, ValueError) as err:
                    raise CheckpointError(
                        f"agent snapshot does not fit module {prefix!r}: {err}"
                    ) from err
            for prefix, optimizer in self._checkpoint_optimizers():
                optimizer.restore_checkpoint_state(
                    split(prefix), meta["optimizers"][prefix]
                )
        # A pristine snapshot carries no network/optimizer arrays: the
        # caller (ModelBundle.restore_session) is responsible for having
        # copied the template weights into this agent already.
        self.buffer.restore_checkpoint_state(split("buffer"), meta["buffer"])
        self.noise.restore_checkpoint_state(split("noise"), meta["noise"])
        self.history.episode_rewards = [
            float(x) for x in arrays["history.episode_rewards"]
        ]
        self.history.critic_losses = [
            float(x) for x in arrays["history.critic_losses"]
        ]
        self.history.actor_objectives = [
            float(x) for x in arrays["history.actor_objectives"]
        ]
        self._rng.bit_generator.state = meta["rng"]
        grad_norm = meta.get("last_actor_grad_norm")
        self._last_actor_grad_norm = (
            None if grad_norm is None else float(grad_norm)
        )
        # Older snapshots predate the counter; ``update()`` appends one
        # critic loss per applied update, so the history length is exact.
        self.updates_applied = int(
            meta.get("updates_applied", len(self.history.critic_losses))
        )
