"""Replay buffer with uniform and median-balanced diversity sampling.

The paper's convergence improvement (§II-D, Eq. 4) replaces DDPG's uniform
replay sampling with a *median-balanced* scheme: each minibatch contains
N/2 transitions whose reward is at or above the buffer median and N/2
below it, so both strong and weak weight choices keep reaching the actor
and critic. The Q3 benchmark reproduces the resulting speed-up.

Storage layout
--------------
Transitions live in preallocated ring arrays (one per field:
states/actions/rewards/next_states/dones) rather than a Python list of
:class:`Transition` objects. ``push`` is an O(1) set of array writes,
``_collate`` is pure fancy indexing over the rings (no per-sample object
traffic), and the median split reads the maintained rewards array
directly instead of rebuilding it every call. Slot order matches the
historical list implementation exactly (fill 0..capacity-1, then
overwrite from slot 0), so the same RNG seed draws the same indices and
yields bit-identical batches.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError, DataValidationError
from repro.rl.mdp import Transition

Batch = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class ReplayBuffer:
    """Fixed-capacity circular transition store backed by ring arrays.

    Parameters
    ----------
    capacity:
        ``N_max`` — the maximum number of stored transitions; the oldest
        are overwritten once full.
    seed:
        Seed for the sampling generator (reproducible training).
    """

    def __init__(self, capacity: int = 10_000, seed: int = 0):
        if capacity < 2:
            raise ConfigurationError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._states: Optional[np.ndarray] = None
        self._actions: Optional[np.ndarray] = None
        self._rewards: Optional[np.ndarray] = None
        self._next_states: Optional[np.ndarray] = None
        self._dones: Optional[np.ndarray] = None
        self._size = 0
        self._write = 0

    def __len__(self) -> int:
        return self._size

    def _allocate(self, transition: Transition) -> None:
        state = np.asarray(transition.state)
        action = np.asarray(transition.action)
        next_state = np.asarray(transition.next_state)
        self._states = np.empty((self.capacity, *state.shape), dtype=state.dtype)
        self._actions = np.empty(
            (self.capacity, *action.shape), dtype=action.dtype
        )
        self._rewards = np.empty(self.capacity, dtype=np.float64)
        self._next_states = np.empty(
            (self.capacity, *next_state.shape), dtype=next_state.dtype
        )
        self._dones = np.empty(self.capacity, dtype=np.float64)

    def push(self, transition: Transition) -> None:
        """Store a transition, overwriting the oldest when full."""
        if self._states is None:
            self._allocate(transition)
        slot = self._write
        self._states[slot] = transition.state
        self._actions[slot] = transition.action
        self._rewards[slot] = transition.reward
        self._next_states[slot] = transition.next_state
        self._dones[slot] = float(transition.done)
        self._write = (slot + 1) % self.capacity
        if self._size < self.capacity:
            self._size += 1

    def clear(self) -> None:
        """Empty the buffer and release the rings (shapes may change)."""
        self._states = None
        self._actions = None
        self._rewards = None
        self._next_states = None
        self._dones = None
        self._size = 0
        self._write = 0

    def transitions(self) -> List[Transition]:
        """Materialise the stored transitions in slot order (debug/tests)."""
        return [
            Transition(
                state=self._states[i].copy(),
                action=self._actions[i].copy(),
                reward=float(self._rewards[i]),
                next_state=self._next_states[i].copy(),
                done=bool(self._dones[i]),
            )
            for i in range(self._size)
        ]

    # ------------------------------------------------------------------
    def _collate(self, indices: np.ndarray) -> Batch:
        return (
            self._states[indices],
            self._actions[indices],
            self._rewards[indices],
            self._next_states[indices],
            self._dones[indices],
        )

    def sample_uniform(self, batch_size: int) -> Batch:
        """Vanilla DDPG sampling: uniform with replacement."""
        if self._size == 0:
            raise DataValidationError("cannot sample from an empty buffer")
        indices = self._rng.integers(0, self._size, size=batch_size)
        return self._collate(indices)

    def sample_median_balanced(self, batch_size: int) -> Batch:
        """Paper Eq. (4): N/2 rewards ≥ median, N/2 below the median.

        When one side of the median is empty (e.g. constant rewards so
        far), the scheme degrades gracefully to uniform sampling.
        """
        if self._size == 0:
            raise DataValidationError("cannot sample from an empty buffer")
        rewards = self._rewards[: self._size]
        median = float(np.median(rewards))
        high = np.flatnonzero(rewards >= median)
        low = np.flatnonzero(rewards < median)
        if high.size == 0 or low.size == 0:
            return self.sample_uniform(batch_size)
        n_high = batch_size // 2
        n_low = batch_size - n_high
        chosen_high = self._rng.choice(high, size=n_high, replace=True)
        chosen_low = self._rng.choice(low, size=n_low, replace=True)
        indices = np.concatenate([chosen_high, chosen_low])
        self._rng.shuffle(indices)
        return self._collate(indices)

    def sample(self, batch_size: int, strategy: str = "median") -> Batch:
        """Dispatch by strategy name: ``"median"`` (paper) or ``"uniform"``."""
        if strategy == "median":
            return self.sample_median_balanced(batch_size)
        if strategy == "uniform":
            return self.sample_uniform(batch_size)
        raise ConfigurationError(
            f"strategy must be 'median' or 'uniform', got {strategy!r}"
        )

    def reward_median(self) -> float:
        """Median of stored rewards (the Eq. 4 split point)."""
        if self._size == 0:
            raise DataValidationError("buffer is empty")
        return float(np.median(self._rewards[: self._size]))

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Full resumable state: filled ring slots, cursors, sampler RNG.

        Only the ``_size`` filled slots are serialised (the tail of a
        partially filled ring is uninitialised memory and never read);
        the wraparound cursor and the sampling generator's bit state are
        carried in the JSON-able meta so a restored buffer draws exactly
        the same future batches.
        """
        arrays: Dict[str, np.ndarray] = {}
        if self._states is not None:
            arrays["states"] = self._states[: self._size].copy()
            arrays["actions"] = self._actions[: self._size].copy()
            arrays["rewards"] = self._rewards[: self._size].copy()
            arrays["next_states"] = self._next_states[: self._size].copy()
            arrays["dones"] = self._dones[: self._size].copy()
        meta = {
            "capacity": self.capacity,
            "size": self._size,
            "write": self._write,
            "allocated": self._states is not None,
            "rng": self._rng.bit_generator.state,
        }
        return arrays, meta

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        """Restore a snapshot taken by :meth:`checkpoint_state`."""
        if int(meta["capacity"]) != self.capacity:
            raise CheckpointError(
                f"replay snapshot capacity {meta['capacity']} does not match "
                f"this buffer's capacity {self.capacity}"
            )
        self.clear()
        self._rng.bit_generator.state = meta["rng"]
        if not meta["allocated"]:
            return
        size = int(meta["size"])
        states = np.asarray(arrays["states"])
        actions = np.asarray(arrays["actions"])
        next_states = np.asarray(arrays["next_states"])
        if states.shape[0] != size:
            raise CheckpointError(
                f"replay snapshot carries {states.shape[0]} rows but "
                f"declares size {size}"
            )
        self._states = np.empty(
            (self.capacity, *states.shape[1:]), dtype=states.dtype
        )
        self._actions = np.empty(
            (self.capacity, *actions.shape[1:]), dtype=actions.dtype
        )
        self._rewards = np.empty(self.capacity, dtype=np.float64)
        self._next_states = np.empty(
            (self.capacity, *next_states.shape[1:]), dtype=next_states.dtype
        )
        self._dones = np.empty(self.capacity, dtype=np.float64)
        self._states[:size] = states
        self._actions[:size] = actions
        self._rewards[:size] = arrays["rewards"]
        self._next_states[:size] = next_states
        self._dones[:size] = arrays["dones"]
        self._size = size
        self._write = int(meta["write"])
