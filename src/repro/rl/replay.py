"""Replay buffer with uniform and median-balanced diversity sampling.

The paper's convergence improvement (§II-D, Eq. 4) replaces DDPG's uniform
replay sampling with a *median-balanced* scheme: each minibatch contains
N/2 transitions whose reward is at or above the buffer median and N/2
below it, so both strong and weak weight choices keep reaching the actor
and critic. The Q3 benchmark reproduces the resulting speed-up.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.rl.mdp import Transition

Batch = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class ReplayBuffer:
    """Fixed-capacity circular transition store.

    Parameters
    ----------
    capacity:
        ``N_max`` — the maximum number of stored transitions; the oldest
        are overwritten once full.
    seed:
        Seed for the sampling generator (reproducible training).
    """

    def __init__(self, capacity: int = 10_000, seed: int = 0):
        if capacity < 2:
            raise ConfigurationError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._storage: List[Transition] = []
        self._write = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    def push(self, transition: Transition) -> None:
        """Store a transition, overwriting the oldest when full."""
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._write] = transition
            self._write = (self._write + 1) % self.capacity

    def clear(self) -> None:
        self._storage.clear()
        self._write = 0

    # ------------------------------------------------------------------
    def _collate(self, indices: np.ndarray) -> Batch:
        items = [self._storage[i] for i in indices]
        states = np.stack([t.state for t in items])
        actions = np.stack([t.action for t in items])
        rewards = np.array([t.reward for t in items])
        next_states = np.stack([t.next_state for t in items])
        dones = np.array([t.done for t in items], dtype=np.float64)
        return states, actions, rewards, next_states, dones

    def sample_uniform(self, batch_size: int) -> Batch:
        """Vanilla DDPG sampling: uniform with replacement."""
        if not self._storage:
            raise DataValidationError("cannot sample from an empty buffer")
        indices = self._rng.integers(0, len(self._storage), size=batch_size)
        return self._collate(indices)

    def sample_median_balanced(self, batch_size: int) -> Batch:
        """Paper Eq. (4): N/2 rewards ≥ median, N/2 below the median.

        When one side of the median is empty (e.g. constant rewards so
        far), the scheme degrades gracefully to uniform sampling.
        """
        if not self._storage:
            raise DataValidationError("cannot sample from an empty buffer")
        rewards = np.array([t.reward for t in self._storage])
        median = float(np.median(rewards))
        high = np.flatnonzero(rewards >= median)
        low = np.flatnonzero(rewards < median)
        if high.size == 0 or low.size == 0:
            return self.sample_uniform(batch_size)
        n_high = batch_size // 2
        n_low = batch_size - n_high
        chosen_high = self._rng.choice(high, size=n_high, replace=True)
        chosen_low = self._rng.choice(low, size=n_low, replace=True)
        indices = np.concatenate([chosen_high, chosen_low])
        self._rng.shuffle(indices)
        return self._collate(indices)

    def sample(self, batch_size: int, strategy: str = "median") -> Batch:
        """Dispatch by strategy name: ``"median"`` (paper) or ``"uniform"``."""
        if strategy == "median":
            return self.sample_median_balanced(batch_size)
        if strategy == "uniform":
            return self.sample_uniform(batch_size)
        raise ConfigurationError(
            f"strategy must be 'median' or 'uniform', got {strategy!r}"
        )

    def reward_median(self) -> float:
        """Median of stored rewards (the Eq. 4 split point)."""
        if not self._storage:
            raise DataValidationError("buffer is empty")
        return float(np.median([t.reward for t in self._storage]))
