"""Reward functions for the ensemble-aggregation MDP (paper §II-B).

Three rewards are provided:

- :class:`RankReward` — the paper's Eq. (3): rank the m base models plus
  the ensemble by window forecasting error; ``r = m + 1 − rank(ensemble)``.
  Scale-free, hence stable across time-varying series (the property the
  paper's Fig. 2b demonstrates).
- :class:`NRMSEReward` — the paper's Fig. 2a comparison setting:
  ``r = 1 − NRMSE`` of the ensemble on the window. Tracks error
  magnitude, which drifts with the series itself, so DDPG fails to
  converge with it.
- :class:`DiversityRankReward` — the future-work extension sketched in
  §III-B: the rank reward plus a bonus for weight dispersion across
  disagreeing members.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError


def ensemble_window_error(
    window_predictions: np.ndarray, window_truth: np.ndarray, weights: np.ndarray
) -> float:
    """RMSE of the weighted ensemble over a window.

    ``window_predictions`` has shape ``(ω, m)``; ``weights`` shape ``(m,)``.
    """
    combined = window_predictions @ weights
    diff = combined - window_truth
    return float(np.sqrt(np.mean(diff * diff)))


def model_window_errors(
    window_predictions: np.ndarray, window_truth: np.ndarray
) -> np.ndarray:
    """Per-model RMSE over the window; shape ``(m,)``."""
    diff = window_predictions - window_truth[:, None]
    return np.sqrt(np.mean(diff * diff, axis=0))


class RewardFunction(abc.ABC):
    """Maps (window predictions, window truth, action weights) → scalar."""

    name: str = "reward"

    @abc.abstractmethod
    def __call__(
        self,
        window_predictions: np.ndarray,
        window_truth: np.ndarray,
        weights: np.ndarray,
    ) -> float:
        """Compute the reward for taking ``weights`` on this window."""

    def _validate(
        self,
        window_predictions: np.ndarray,
        window_truth: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        if window_predictions.ndim != 2:
            raise DataValidationError(
                f"window predictions must be 2-D, got {window_predictions.shape}"
            )
        if window_truth.shape[0] != window_predictions.shape[0]:
            raise DataValidationError("window truth/predictions length mismatch")
        if weights.shape[0] != window_predictions.shape[1]:
            raise DataValidationError(
                f"got {weights.shape[0]} weights for "
                f"{window_predictions.shape[1]} models"
            )


class RankReward(RewardFunction):
    """Paper Eq. (3): ``r_t = m + 1 − ρ(f̄)``.

    Ranks are 1-based; rank 1 = lowest window RMSE. Ties are broken in
    favour of the ensemble (standard competition ranking via sorting
    keeps the ensemble's position stable under exact ties).
    """

    name = "rank"

    def __call__(
        self,
        window_predictions: np.ndarray,
        window_truth: np.ndarray,
        weights: np.ndarray,
    ) -> float:
        self._validate(window_predictions, window_truth, weights)
        base_errors = model_window_errors(window_predictions, window_truth)
        ens_error = ensemble_window_error(window_predictions, window_truth, weights)
        # Rank of the ensemble = 1 + number of strictly better base models.
        rank = 1 + int(np.sum(base_errors < ens_error))
        m = base_errors.size
        return float(m + 1 - rank)


class NRMSEReward(RewardFunction):
    """Fig. 2a comparison reward: ``1 − NRMSE`` on the window.

    NRMSE normalises the window RMSE by the window's value range, so the
    reward still inherits the series' time-varying structure — exactly
    the instability the paper attributes the non-convergence to.
    """

    name = "nrmse"

    def __call__(
        self,
        window_predictions: np.ndarray,
        window_truth: np.ndarray,
        weights: np.ndarray,
    ) -> float:
        self._validate(window_predictions, window_truth, weights)
        error = ensemble_window_error(window_predictions, window_truth, weights)
        value_range = float(np.ptp(window_truth))
        if value_range < 1e-12:
            value_range = max(abs(float(window_truth.mean())), 1.0)
        return 1.0 - error / value_range


class DiversityRankReward(RewardFunction):
    """Rank reward plus a diversity bonus (paper §III-B future work).

    The bonus is the weighted standard deviation of member predictions at
    the newest window position, normalised by the window value range —
    rewarding combinations that keep disagreeing members in play.
    """

    name = "rank+diversity"

    def __init__(self, diversity_weight: float = 0.5):
        if diversity_weight < 0:
            raise ConfigurationError(
                f"diversity_weight must be >= 0, got {diversity_weight}"
            )
        self.diversity_weight = diversity_weight
        self._rank = RankReward()

    def __call__(
        self,
        window_predictions: np.ndarray,
        window_truth: np.ndarray,
        weights: np.ndarray,
    ) -> float:
        base = self._rank(window_predictions, window_truth, weights)
        latest = window_predictions[-1]
        mean = float(weights @ latest)
        spread = float(np.sqrt(weights @ (latest - mean) ** 2))
        value_range = max(float(np.ptp(window_truth)), 1e-9)
        return base + self.diversity_weight * min(spread / value_range, 1.0)
