"""DQN-based dynamic model *selection* (paper reference [21]).

Feng & Zhang (2019) select a single best forecaster per step with
Q-learning over a discrete action space — the natural RL competitor to
EA-DRL's continuous weighting. This module implements that approach on
the same :class:`~repro.rl.mdp.EnsembleMDP`: action ``i`` plays the
one-hot weight vector ``e_i`` (pure model selection), the state and
reward definitions are shared with EA-DRL, and learning is standard DQN
(replay buffer, target network, ε-greedy exploration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.nn import Adam, Tensor, clip_grad_norm, mlp, mse_loss
from repro.rl.mdp import EnsembleMDP, Transition
from repro.rl.replay import ReplayBuffer


@dataclass
class DQNConfig:
    """Hyper-parameters of the selection agent."""

    gamma: float = 0.9
    lr: float = 0.005
    hidden: int = 64
    batch_size: int = 32
    buffer_capacity: int = 10_000
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay: float = 0.9
    target_sync_every: int = 50
    grad_clip: float = 5.0
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 <= self.epsilon_end <= self.epsilon_start <= 1.0:
            raise ConfigurationError("need 0 <= eps_end <= eps_start <= 1")
        if self.target_sync_every < 1:
            raise ConfigurationError("target_sync_every must be >= 1")


class DQNSelector:
    """Q-learning agent that picks one pool member per step.

    Actions are indices ``0..m-1``; playing action ``i`` applies the
    one-hot weight vector, i.e. forecasts with model ``i`` alone.
    """

    def __init__(self, state_dim: int, n_models: int, config: Optional[DQNConfig] = None):
        self.config = config if config is not None else DQNConfig()
        self.config.validate()
        if state_dim < 1 or n_models < 1:
            raise ConfigurationError("state_dim and n_models must be >= 1")
        self.state_dim = state_dim
        self.n_models = n_models
        rng = np.random.default_rng(self.config.seed)
        self._rng = rng
        hidden = self.config.hidden
        self.network = mlp([state_dim, hidden, hidden, n_models], rng=rng)
        self.target_network = mlp([state_dim, hidden, hidden, n_models], rng=rng)
        self.target_network.copy_from(self.network)
        self.optimizer = Adam(self.network.parameters(), lr=self.config.lr)
        self.buffer = ReplayBuffer(self.config.buffer_capacity, seed=self.config.seed)
        self._epsilon = self.config.epsilon_start
        self._updates = 0
        self.episode_rewards: List[float] = []

    # ------------------------------------------------------------------
    def q_values(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64)
        if state.shape != (self.state_dim,):
            raise DataValidationError(
                f"state must have shape ({self.state_dim},), got {state.shape}"
            )
        return self.network(Tensor(state[None, :])).numpy()[0]

    def select(self, state: np.ndarray, explore: bool = False) -> int:
        """ε-greedy model index."""
        if explore and self._rng.random() < self._epsilon:
            return int(self._rng.integers(self.n_models))
        return int(np.argmax(self.q_values(state)))

    def one_hot(self, action: int) -> np.ndarray:
        weights = np.zeros(self.n_models)
        weights[action] = 1.0
        return weights

    # ------------------------------------------------------------------
    def update(self) -> None:
        if len(self.buffer) < self.config.batch_size:
            return
        states, actions, rewards, next_states, dones = self.buffer.sample_uniform(
            self.config.batch_size
        )
        action_idx = actions.argmax(axis=1)
        next_q = self.target_network(Tensor(next_states)).numpy()
        targets = rewards + self.config.gamma * (1.0 - dones) * next_q.max(axis=1)

        self.network.zero_grad()
        q_all = self.network(Tensor(states))
        rows = np.arange(self.config.batch_size)
        q_taken = q_all[rows, action_idx]
        loss = mse_loss(q_taken, Tensor(targets))
        loss.backward()
        clip_grad_norm(self.network.parameters(), self.config.grad_clip)
        self.optimizer.step()

        self._updates += 1
        if self._updates % self.config.target_sync_every == 0:
            self.target_network.copy_from(self.network)

    # ------------------------------------------------------------------
    def train(
        self,
        env: EnsembleMDP,
        episodes: int = 50,
        max_iterations: Optional[int] = 100,
    ) -> List[float]:
        """Episode loop mirroring :meth:`DDPGAgent.train`."""
        if episodes < 1:
            raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
        if env.action_dim != self.n_models:
            raise DataValidationError(
                f"environment has {env.action_dim} models, agent expects "
                f"{self.n_models}"
            )
        for _ in range(episodes):
            state = env.reset()
            total = 0.0
            steps = env.steps_per_episode
            if max_iterations is not None:
                steps = min(steps, max_iterations)
            for _ in range(steps):
                action = self.select(state, explore=True)
                weights = self.one_hot(action)
                next_state, reward, done = env.step(weights)
                self.buffer.push(
                    Transition(state, weights, reward, next_state, done)
                )
                total += reward
                state = next_state
                self.update()
                if done:
                    break
            self.episode_rewards.append(total / max(steps, 1))
            self._epsilon = max(
                self.config.epsilon_end, self._epsilon * self.config.epsilon_decay
            )
        return self.episode_rewards

    # ------------------------------------------------------------------
    def greedy_selection_path(
        self, predictions: np.ndarray, bootstrap: np.ndarray
    ) -> np.ndarray:
        """Deployment: greedy per-step selections over a prediction matrix.

        Returns the combined forecasts (each step = one model's output).
        ``bootstrap`` supplies the initial state window (uniform-combined,
        matching the MDP reset convention).
        """
        predictions = np.asarray(predictions, dtype=np.float64)
        bootstrap = np.asarray(bootstrap, dtype=np.float64)
        if bootstrap.shape[0] < self.state_dim:
            raise DataValidationError(
                f"bootstrap needs >= {self.state_dim} rows"
            )
        uniform = np.full(predictions.shape[1], 1.0 / predictions.shape[1])
        state = bootstrap[-self.state_dim :] @ uniform
        out = np.empty(predictions.shape[0])
        for i in range(predictions.shape[0]):
            action = self.select(state, explore=False)
            out[i] = predictions[i, action]
            state = np.append(state[1:], out[i])
        return out
