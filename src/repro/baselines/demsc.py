"""DEMSC: drift-aware dynamic ensemble-member selection (Saadallah 2019).

The paper's strongest competitor. DEMSC combines:

1. **Top.sel pruning** — keep the best-performing half of the pool by
   recent window error;
2. **Clus diversity enhancement** — cluster the survivors by error
   correlation and keep one representative per cluster;
3. **SWE combination** of the representatives;
4. **Informed updates** — the member-selection stage (1-2, the expensive
   part) reruns only when a Page-Hinkley detector signals drift in the
   ensemble's own error stream; between drifts only the cheap SWE weights
   refresh.

The per-step clustering on drift (plus the always-on bookkeeping) is what
makes DEMSC slower online than EA-DRL's single policy-network forward pass
— the effect Table III measures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Combiner, inverse_error_weights, validate_matrix
from repro.baselines.drift import PageHinkley
from repro.baselines.selection import correlation_clusters
from repro.exceptions import ConfigurationError


class DEMSC(Combiner):
    """Drift-aware Ensemble Member Selection using Clustering.

    Parameters
    ----------
    window:
        Sliding window for member scoring and SWE weights.
    prune_fraction:
        Fraction of the pool retained by the Top.sel pruning stage.
    correlation_threshold:
        Clus redundancy threshold.
    drift_delta, drift_threshold:
        Page-Hinkley parameters for the informed-update trigger.
    """

    name = "DEMSC"

    def __init__(
        self,
        window: int = 10,
        prune_fraction: float = 0.5,
        correlation_threshold: float = 0.9,
        drift_delta: float = 0.05,
        drift_threshold: float = 3.0,
        detector_factory=None,
    ):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if not 0.0 < prune_fraction <= 1.0:
            raise ConfigurationError(
                f"prune_fraction must be in (0, 1], got {prune_fraction}"
            )
        self.window = window
        self.prune_fraction = prune_fraction
        self.correlation_threshold = correlation_threshold
        self.drift_delta = drift_delta
        self.drift_threshold = drift_threshold
        #: zero-arg callable returning a detector with ``update(x) -> bool``;
        #: defaults to Page-Hinkley, ``lambda: ADWIN()`` is the alternative.
        self.detector_factory = detector_factory
        self.n_drift_updates_: int = 0

    # ------------------------------------------------------------------
    def _select_members(
        self, window_preds: np.ndarray, window_truth: np.ndarray
    ) -> np.ndarray:
        """Top.sel pruning followed by Clus representatives."""
        errors = window_preds - window_truth[:, None]
        window_rmse = np.sqrt(np.mean(errors ** 2, axis=0))
        m = window_rmse.size
        keep = max(1, int(round(self.prune_fraction * m)))
        pruned = np.argsort(window_rmse)[:keep]
        clusters = correlation_clusters(
            errors[:, pruned], self.correlation_threshold
        )
        reps = np.array(
            [
                pruned[cluster[np.argmin(window_rmse[pruned[cluster]])]]
                for cluster in clusters
            ]
        )
        return np.sort(reps)

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        out = np.empty(T)
        weights = np.zeros((T, m))
        if self.detector_factory is not None:
            detector = self.detector_factory()
        else:
            detector = PageHinkley(
                delta=self.drift_delta, threshold=self.drift_threshold
            )
        members: Optional[np.ndarray] = None
        self.n_drift_updates_ = 0
        for t in range(T):
            lo = max(0, t - self.window)
            if t < 2:
                w = np.full(m, 1.0 / m)
            else:
                if members is None:
                    members = self._select_members(P[lo:t], y[lo:t])
                window_err = np.sqrt(
                    np.mean((P[lo:t, members] - y[lo:t, None]) ** 2, axis=0)
                )
                w = np.zeros(m)
                w[members] = inverse_error_weights(window_err)
            weights[t] = w
            pred = float(P[t] @ w)
            out[t] = pred
            drift = detector.update(abs(pred - y[t]))
            if drift and t >= 2:
                members = self._select_members(P[lo + 1 : t + 1], y[lo + 1 : t + 1])
                self.n_drift_updates_ += 1
        return out, weights
