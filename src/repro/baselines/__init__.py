"""Comparison methods from the paper's Table II."""

from repro.baselines.adwin import ADWIN
from repro.baselines.base import Combiner, inverse_error_weights, validate_matrix
from repro.baselines.demsc import DEMSC
from repro.baselines.drift import PageHinkley
from repro.baselines.experts import (
    ExponentiallyWeightedAverage,
    FixedShare,
    MLPoly,
    OnlineGradientDescent,
)
from repro.baselines.regret import (
    RegretTrajectory,
    run_with_regret,
    squared_loss_regret,
)
from repro.baselines.selection import (
    ClusterSelection,
    TopSelection,
    correlation_clusters,
)
from repro.baselines.single import SingleModelBaseline, make_single_baselines
from repro.baselines.stacking import StackingCombiner
from repro.baselines.static import SimpleEnsemble, SlidingWindowEnsemble

__all__ = [
    "ADWIN",
    "ClusterSelection",
    "Combiner",
    "DEMSC",
    "ExponentiallyWeightedAverage",
    "FixedShare",
    "MLPoly",
    "OnlineGradientDescent",
    "PageHinkley",
    "RegretTrajectory",
    "SimpleEnsemble",
    "SingleModelBaseline",
    "SlidingWindowEnsemble",
    "StackingCombiner",
    "TopSelection",
    "correlation_clusters",
    "inverse_error_weights",
    "run_with_regret",
    "squared_loss_regret",
    "make_single_baselines",
    "validate_matrix",
]
