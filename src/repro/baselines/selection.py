"""Dynamic ensemble-member selection: Top.sel and Clus (Saadallah 2019).

- **Top.sel** — keep the ``top_k`` members with the lowest recent window
  error and combine them with SWE weights.
- **Clus** — group members whose recent *error trajectories* are highly
  correlated (redundant models), keep one representative per group (the
  most accurate), and SWE-combine the representatives. Clustering uses
  connected components of the high-correlation graph (networkx).
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from repro.baselines.base import Combiner, inverse_error_weights, validate_matrix
from repro.exceptions import ConfigurationError


def correlation_clusters(errors: np.ndarray, threshold: float) -> List[np.ndarray]:
    """Cluster models by error-trajectory correlation.

    ``errors`` has shape ``(window, m)``. Two models join the same cluster
    when the Pearson correlation of their error sequences exceeds
    ``threshold``; clusters are the connected components of that graph.
    """
    m = errors.shape[1]
    if m == 1:
        return [np.array([0])]
    centred = errors - errors.mean(axis=0, keepdims=True)
    norms = np.sqrt((centred ** 2).sum(axis=0))
    norms = np.where(norms > 1e-12, norms, 1.0)
    corr = (centred.T @ centred) / np.outer(norms, norms)
    graph = nx.Graph()
    graph.add_nodes_from(range(m))
    rows, cols = np.where(np.triu(corr, k=1) > threshold)
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return [np.array(sorted(component)) for component in nx.connected_components(graph)]


class TopSelection(Combiner):
    """Top.sel: SWE over the ``top_k`` recent best members."""

    def __init__(self, top_k: int = 5, window: int = 10):
        if top_k < 1 or window < 1:
            raise ConfigurationError("top_k and window must be >= 1")
        self.top_k = top_k
        self.window = window
        self.name = f"Top.sel(k={top_k})"

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        k = min(self.top_k, m)
        out = np.empty(T)
        weights = np.zeros((T, m))
        for t in range(T):
            if t == 0:
                w = np.full(m, 1.0 / m)
            else:
                lo = max(0, t - self.window)
                window_err = np.sqrt(np.mean((P[lo:t] - y[lo:t, None]) ** 2, axis=0))
                chosen = np.argsort(window_err)[:k]
                w = np.zeros(m)
                w[chosen] = inverse_error_weights(window_err[chosen])
            weights[t] = w
            out[t] = P[t] @ w
        return out, weights


class ClusterSelection(Combiner):
    """Clus: per-cluster representatives combined with SWE weights."""

    def __init__(self, window: int = 10, correlation_threshold: float = 0.9):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if not -1.0 < correlation_threshold < 1.0:
            raise ConfigurationError(
                f"correlation_threshold must be in (-1, 1), "
                f"got {correlation_threshold}"
            )
        self.window = window
        self.correlation_threshold = correlation_threshold
        self.name = f"Clus(rho={correlation_threshold})"

    def _representative_weights(
        self, window_preds: np.ndarray, window_truth: np.ndarray
    ) -> np.ndarray:
        errors = window_preds - window_truth[:, None]
        window_rmse = np.sqrt(np.mean(errors ** 2, axis=0))
        clusters = correlation_clusters(errors, self.correlation_threshold)
        reps = np.array(
            [cluster[np.argmin(window_rmse[cluster])] for cluster in clusters]
        )
        m = window_preds.shape[1]
        w = np.zeros(m)
        w[reps] = inverse_error_weights(window_rmse[reps])
        return w

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        out = np.empty(T)
        weights = np.zeros((T, m))
        for t in range(T):
            if t < 2:
                w = np.full(m, 1.0 / m)
            else:
                lo = max(0, t - self.window)
                w = self._representative_weights(P[lo:t], y[lo:t])
            weights[t] = w
            out[t] = P[t] @ w
        return out, weights
