"""Static and sliding-window ensembles: SE and SWE.

- **SE** (Clemen & Winkler 1986): the arithmetic mean of all base
  learners — the classic "forecast combination puzzle" baseline.
- **SWE** (Saadallah et al., BRIGHT 2018): a linear combination whose
  weights are proportional to each model's inverse error over a recent
  sliding window.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Combiner, inverse_error_weights, validate_matrix
from repro.exceptions import ConfigurationError


class SimpleEnsemble(Combiner):
    """SE: uniform average of the pool at every step."""

    name = "SE"

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        P, _ = validate_matrix(predictions, truth)
        return P.mean(axis=1)

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        return P.mean(axis=1), np.full(P.shape, 1.0 / P.shape[1])


class SlidingWindowEnsemble(Combiner):
    """SWE: weights from inverse window RMSE of each member.

    Parameters
    ----------
    window:
        Number of recent steps used to score members (paper setups use
        the same ω as EA-DRL).
    power:
        Sharpness of the inverse-error weighting.
    """

    def __init__(self, window: int = 10, power: float = 2.0):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.power = power
        self.name = f"SWE(w={window})"

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        out = np.empty(T)
        weights = np.empty((T, m))
        uniform = np.full(m, 1.0 / m)
        for t in range(T):
            if t == 0:
                w = uniform
            else:
                lo = max(0, t - self.window)
                window_err = np.sqrt(
                    np.mean((P[lo:t] - y[lo:t, None]) ** 2, axis=0)
                )
                w = inverse_error_weights(window_err, power=self.power)
            weights[t] = w
            out[t] = P[t] @ w
        return out, weights
