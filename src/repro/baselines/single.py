"""Standalone-model baselines for Table II (ARIMA, RF, GBM, LSTM, StLSTM).

These wrap a single :class:`~repro.models.base.Forecaster` into the same
evaluation surface as the combiners: given the full series and the test
start index, they fit on the training prefix and emit prequential
one-step forecasts for the test segment.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.models.arima import ARIMA
from repro.models.base import Forecaster
from repro.models.forest import RandomForestForecaster
from repro.models.gbm import GradientBoostingForecaster
from repro.models.recurrent_forecasters import LSTMForecaster, StackedLSTMForecaster
from repro.preprocessing.embedding import validate_series


class SingleModelBaseline:
    """Adapter: fit on ``series[:start]``, roll over ``series[start:]``."""

    def __init__(self, forecaster: Forecaster, name: str):
        self.forecaster = forecaster
        self.name = name

    def run(self, series: np.ndarray, start: int) -> np.ndarray:
        array = validate_series(series, min_length=start + 1)
        if start < 10:
            raise DataValidationError(f"start={start} leaves too little training data")
        self.forecaster.fit(array[:start])
        return self.forecaster.rolling_predictions(array, start)


def make_single_baselines(
    embedding_dimension: int = 5, neural_epochs: int = 60, seed: int = 0
):
    """The five standalone baselines of the paper's Table II."""
    return [
        SingleModelBaseline(ARIMA(2, 0, 1), "ARIMA"),
        SingleModelBaseline(
            RandomForestForecaster(embedding_dimension, n_estimators=50, seed=seed),
            "RF",
        ),
        SingleModelBaseline(
            GradientBoostingForecaster(
                embedding_dimension, n_estimators=80, max_depth=3, seed=seed
            ),
            "GBM",
        ),
        SingleModelBaseline(
            LSTMForecaster(window=10, hidden=8, epochs=neural_epochs, seed=seed),
            "LSTM",
        ),
        SingleModelBaseline(
            StackedLSTMForecaster(
                window=10, hidden=8, num_layers=2, epochs=neural_epochs, seed=seed
            ),
            "StLSTM",
        ),
    ]
