"""Regret accounting for the expert-advice combiners.

The EWA/FS/OGD/MLPol baselines carry theoretical guarantees stated in
terms of *regret* — cumulative loss of the aggregated forecast minus the
cumulative loss of the best expert in hindsight. This module computes
the realised regret trajectory of any combiner run, which the test suite
uses to verify the sublinear-regret behaviour the theory promises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Combiner, validate_matrix
from repro.exceptions import DataValidationError


@dataclass(frozen=True)
class RegretTrajectory:
    """Cumulative regret of a combiner against the best fixed expert."""

    cumulative_regret: np.ndarray  # shape (T,)
    best_expert: int

    @property
    def final(self) -> float:
        return float(self.cumulative_regret[-1])

    def average_regret(self) -> np.ndarray:
        """Per-step average regret R_t / t; → 0 for no-regret learners."""
        steps = np.arange(1, self.cumulative_regret.size + 1)
        return self.cumulative_regret / steps

    def is_sublinear(self, tail_fraction: float = 0.25, decay: float = 0.9) -> bool:
        """Average regret over the last ``tail_fraction`` of the run has
        decayed to at most ``decay`` × its early value (strict decrease,
        so exactly-linear regret — constant R_t/t — fails).

        Negative early regret (the learner beating the best expert from
        the start) counts as sublinear immediately.
        """
        avg = self.average_regret()
        k = max(1, int(tail_fraction * avg.size))
        head = float(avg[:k].mean())
        tail = float(avg[-k:].mean())
        if head <= 0.0:
            return tail <= max(head, 0.0) + 1e-12
        return tail <= decay * head


def squared_loss_regret(
    combined: np.ndarray, predictions: np.ndarray, truth: np.ndarray
) -> RegretTrajectory:
    """Regret of realised combined forecasts under squared loss.

    The comparator is the *single best expert in hindsight* (the standard
    external-regret benchmark of Cesa-Bianchi & Lugosi 2006).
    """
    P, y = validate_matrix(predictions, truth)
    combined = np.asarray(combined, dtype=np.float64)
    if combined.shape != y.shape:
        raise DataValidationError(
            f"combined {combined.shape} does not match truth {y.shape}"
        )
    agg_losses = (combined - y) ** 2
    expert_losses = (P - y[:, None]) ** 2
    best_expert = int(np.argmin(expert_losses.sum(axis=0)))
    regret = np.cumsum(agg_losses - expert_losses[:, best_expert])
    return RegretTrajectory(cumulative_regret=regret, best_expert=best_expert)


def run_with_regret(
    combiner: Combiner, predictions: np.ndarray, truth: np.ndarray
) -> RegretTrajectory:
    """Run a combiner prequentially and compute its regret trajectory."""
    combined = combiner.run(predictions, truth)
    return squared_loss_regret(combined, predictions, truth)
