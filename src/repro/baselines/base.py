"""Combiner interface: prequential ensemble aggregation over a pool.

A :class:`Combiner` consumes the pool's prequential prediction matrix
``P`` (rows = time, columns = models) together with the true values and
emits combined one-step forecasts. Causality is the contract: the weight
vector used at row ``t`` may depend only on rows ``< t``.

``fit(train_predictions, train_truth)`` is an optional meta-training hook
(used by stacking); stateless combiners inherit the no-op default.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DataValidationError


def validate_matrix(
    predictions: np.ndarray, truth: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a (T, m) prediction matrix against a length-T truth."""
    P = np.asarray(predictions, dtype=np.float64)
    y = np.asarray(truth, dtype=np.float64)
    if P.ndim != 2:
        raise DataValidationError(f"predictions must be 2-D, got {P.shape}")
    if y.ndim != 1 or y.size != P.shape[0]:
        raise DataValidationError(
            f"truth length {y.shape} does not match prediction rows {P.shape}"
        )
    if not (np.all(np.isfinite(P)) and np.all(np.isfinite(y))):
        raise DataValidationError("predictions/truth contain NaN or inf")
    return P, y


class Combiner(abc.ABC):
    """Base class for all ensemble-combination baselines."""

    name: str = "combiner"

    def fit(
        self, train_predictions: np.ndarray, train_truth: np.ndarray
    ) -> "Combiner":
        """Optional meta-training on a training-segment matrix (no-op)."""
        validate_matrix(train_predictions, train_truth)
        return self

    @abc.abstractmethod
    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        """Prequential combined forecasts, shape ``(T,)``."""

    def run_with_weights(
        self, predictions: np.ndarray, truth: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`run` but also returns the (T, m) weight trail.

        The default re-runs the combiner; subclasses that track weights
        internally override this for efficiency.
        """
        P, y = validate_matrix(predictions, truth)
        output = self.run(P, y)
        uniform = np.full(P.shape, 1.0 / P.shape[1])
        return output, uniform

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def inverse_error_weights(errors: np.ndarray, power: float = 2.0) -> np.ndarray:
    """Normalised inverse-error weights: ``w_i ∝ 1 / err_i^power``.

    Zero errors receive the whole mass (split among exact-zero models).
    """
    errors = np.asarray(errors, dtype=np.float64)
    zero = errors <= 1e-12
    if np.any(zero):
        w = zero.astype(np.float64)
        return w / w.sum()
    inv = errors ** (-power)
    return inv / inv.sum()
