"""Stacking (Wolpert 1992) with a random-forest meta-learner.

The meta-learner is trained on a held-out segment of base-model
predictions (features) against the true values (target) — the
configuration the paper evaluates ("An ensemble approach using random
forest as a meta-learner").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import Combiner, validate_matrix
from repro.exceptions import ConfigurationError, NotFittedError
from repro.models.tree import RegressionTree


class StackingCombiner(Combiner):
    """Random-forest stacking over the pool's prediction matrix.

    Parameters
    ----------
    n_estimators, max_depth:
        Meta-forest capacity.
    seed:
        Bootstrap seed.
    """

    name = "Stacking"

    def __init__(self, n_estimators: int = 50, max_depth: Optional[int] = 6, seed: int = 0):
        if n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self._trees: List[RegressionTree] = []

    def fit(self, train_predictions: np.ndarray, train_truth: np.ndarray) -> "StackingCombiner":
        P, y = validate_matrix(train_predictions, train_truth)
        rng = np.random.default_rng(self.seed)
        n, m = P.shape
        max_features = max(1, int(np.ceil(np.sqrt(m))))
        self._trees = []
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, size=n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=2,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(P[rows], y[rows])
            self._trees.append(tree)
        return self

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError(type(self).__name__)
        P, _ = validate_matrix(predictions, truth)
        total = np.zeros(P.shape[0])
        for tree in self._trees:
            total += tree.predict(P)
        return total / len(self._trees)
