"""Page-Hinkley drift detection (used by DEMSC's informed updates)."""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.exceptions import ConfigurationError


class PageHinkley:
    """Page-Hinkley test on a stream of (error) values.

    Signals drift when the cumulative deviation of the stream above its
    running mean exceeds ``threshold`` (after allowing ``delta`` slack per
    step). Reset after each detection.

    Parameters
    ----------
    delta:
        Magnitude tolerance (fraction of running mean absolute value).
    threshold:
        Detection threshold λ; larger values mean fewer, surer detections.
    burn_in:
        Minimum observations before a detection may fire.
    """

    def __init__(self, delta: float = 0.05, threshold: float = 5.0, burn_in: int = 10):
        if delta < 0 or threshold <= 0 or burn_in < 1:
            raise ConfigurationError("invalid Page-Hinkley parameters")
        self.delta = delta
        self.threshold = threshold
        self.burn_in = burn_in
        self.reset()

    def reset(self) -> None:
        """Clear statistics (called automatically after a detection)."""
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float) -> bool:
        """Feed one observation; returns ``True`` when drift is detected."""
        value = float(value)
        self._count += 1
        self._mean += (value - self._mean) / self._count
        slack = self.delta * max(abs(self._mean), 1e-12)
        self._cumulative += value - self._mean - slack
        self._minimum = min(self._minimum, self._cumulative)
        if self._count < self.burn_in:
            return False
        # Normalise by the running mean so the threshold is scale-free.
        deviation = (self._cumulative - self._minimum) / max(abs(self._mean), 1e-12)
        if deviation > self.threshold:
            self.reset()
            return True
        return False

    @property
    def observations(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (repro.runtime.checkpoint): the running
    # statistics are plain Python floats/ints, so they round-trip
    # bit-exactly through a JSON manifest.
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "mean": self._mean,
            "cumulative": self._cumulative,
            "minimum": self._minimum,
        }

    def restore_checkpoint_state(self, state: Dict[str, Any]) -> None:
        self._count = int(state["count"])
        self._mean = float(state["mean"])
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])
