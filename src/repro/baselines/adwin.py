"""ADWIN drift detection (Bifet & Gavaldà 2007), simplified.

ADaptive WINdowing keeps a window of recent observations and signals a
drift whenever two adjacent sub-windows have means that differ by more
than a Hoeffding-style bound; the older sub-window is then dropped. This
is the standard alternative to Page-Hinkley for informed-update triggers
(DEMSC accepts either via its ``detector`` hook).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from repro.exceptions import ConfigurationError


class ADWIN:
    """Adaptive-windowing change detector.

    Parameters
    ----------
    delta:
        Confidence parameter; smaller = fewer, surer detections.
    max_window:
        Memory cap on the stored window.
    min_sub_window:
        Minimum observations on each side of a candidate cut.
    check_every:
        Evaluate cuts only every k-th update (standard efficiency knob).
    """

    def __init__(
        self,
        delta: float = 0.002,
        max_window: int = 500,
        min_sub_window: int = 5,
        check_every: int = 4,
    ):
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if max_window < 2 * min_sub_window:
            raise ConfigurationError(
                "max_window must hold two minimum sub-windows"
            )
        if check_every < 1:
            raise ConfigurationError("check_every must be >= 1")
        self.delta = delta
        self.max_window = max_window
        self.min_sub_window = min_sub_window
        self.check_every = check_every
        self._window: Deque[float] = deque(maxlen=max_window)
        self._count = 0
        self.n_detections = 0

    def reset(self) -> None:
        self._window.clear()
        self._count = 0

    @property
    def window_size(self) -> int:
        return len(self._window)

    def _cut_found(self) -> bool:
        values = np.fromiter(self._window, dtype=np.float64)
        n = values.size
        total_var = float(values.var()) + 1e-12
        prefix = np.cumsum(values)
        total = prefix[-1]
        for cut in range(self.min_sub_window, n - self.min_sub_window + 1):
            n0, n1 = cut, n - cut
            mean0 = prefix[cut - 1] / n0
            mean1 = (total - prefix[cut - 1]) / n1
            harmonic = 1.0 / (1.0 / n0 + 1.0 / n1)
            delta_prime = self.delta / n
            bound = np.sqrt(
                2.0 / harmonic * total_var * np.log(2.0 / delta_prime)
            ) + 2.0 / (3.0 * harmonic) * np.log(2.0 / delta_prime)
            if abs(mean0 - mean1) > bound:
                # Drop the stale prefix.
                for _ in range(cut):
                    self._window.popleft()
                return True
        return False

    def update(self, value: float) -> bool:
        """Feed one observation; returns ``True`` on detected drift."""
        self._window.append(float(value))
        self._count += 1
        if (
            len(self._window) < 2 * self.min_sub_window
            or self._count % self.check_every
        ):
            return False
        if self._cut_found():
            self.n_detections += 1
            return True
        return False
