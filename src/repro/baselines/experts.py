"""Prediction-with-expert-advice combiners: EWA, Fixed Share, OGD, ML-Poly.

These are the four `opera` (Gaillard & Goude 2016) aggregation rules the
paper compares against. All use the square loss; losses are normalised by
a running range estimate so the tuned learning rates stay meaningful
across series with very different scales.

- **EWA** — exponentially weighted average (Cesa-Bianchi & Lugosi 2006).
- **FS** — fixed share: EWA plus mass redistribution, tracks the best
  expert through regime changes.
- **OGD** — projected online gradient descent on the simplex (Zinkevich
  2003) with the standard 1/√t step schedule and its regret guarantee.
- **MLPol** — ML-Poly: polynomially weighted averages with multiple
  per-expert learning rates (Gaillard, Stoltz & van Erven 2014).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Combiner, validate_matrix
from repro.exceptions import ConfigurationError
from repro.rl.mdp import euclidean_simplex_projection


class _ScaleTracker:
    """Running estimate of the squared value range, for loss normalisation."""

    def __init__(self) -> None:
        self._low = np.inf
        self._high = -np.inf

    def update(self, value: float) -> None:
        self._low = min(self._low, value)
        self._high = max(self._high, value)

    @property
    def squared_range(self) -> float:
        if not np.isfinite(self._low) or self._high <= self._low:
            return 1.0
        return (self._high - self._low) ** 2


class ExponentiallyWeightedAverage(Combiner):
    """EWA: ``w_i ∝ exp(−η · cumulative loss_i)``."""

    name = "EWA"

    def __init__(self, eta: float = 2.0):
        if eta <= 0:
            raise ConfigurationError(f"eta must be positive, got {eta}")
        self.eta = eta

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        cumulative = np.zeros(m)
        scale = _ScaleTracker()
        out = np.empty(T)
        weights = np.empty((T, m))
        for t in range(T):
            shifted = cumulative - cumulative.min()
            w = np.exp(-self.eta * shifted)
            w /= w.sum()
            weights[t] = w
            out[t] = P[t] @ w
            scale.update(float(y[t]))
            cumulative += np.minimum((P[t] - y[t]) ** 2 / scale.squared_range, 1.0)
        return out, weights


class FixedShare(Combiner):
    """FS: EWA with an α-fraction of weight shared uniformly each step."""

    name = "FS"

    def __init__(self, eta: float = 2.0, alpha: float = 0.05):
        if eta <= 0:
            raise ConfigurationError(f"eta must be positive, got {eta}")
        if not 0.0 <= alpha < 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1), got {alpha}")
        self.eta = eta
        self.alpha = alpha

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        w = np.full(m, 1.0 / m)
        scale = _ScaleTracker()
        out = np.empty(T)
        weights = np.empty((T, m))
        for t in range(T):
            weights[t] = w
            out[t] = P[t] @ w
            scale.update(float(y[t]))
            loss = np.minimum((P[t] - y[t]) ** 2 / scale.squared_range, 1.0)
            v = w * np.exp(-self.eta * (loss - loss.min()))
            total = v.sum()
            v = v / total if total > 0 else np.full(m, 1.0 / m)
            w = (1.0 - self.alpha) * v + self.alpha / m
        return out, weights


class OnlineGradientDescent(Combiner):
    """OGD on the simplex with η_t = η₀/√t (Zinkevich 2003)."""

    name = "OGD"

    def __init__(self, eta0: float = 0.5):
        if eta0 <= 0:
            raise ConfigurationError(f"eta0 must be positive, got {eta0}")
        self.eta0 = eta0

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        w = np.full(m, 1.0 / m)
        scale = _ScaleTracker()
        out = np.empty(T)
        weights = np.empty((T, m))
        for t in range(T):
            weights[t] = w
            pred = float(P[t] @ w)
            out[t] = pred
            scale.update(float(y[t]))
            norm = scale.squared_range
            grad = 2.0 * (pred - y[t]) * P[t] / norm
            # Only the tangent component moves the iterate on the simplex;
            # removing the mean also makes the step scale-robust when all
            # experts predict similar values.
            grad = grad - grad.mean()
            grad = np.clip(grad, -1.0, 1.0)
            step = self.eta0 / np.sqrt(t + 1.0)
            w = euclidean_simplex_projection(w - step * grad)
        return out, weights


class MLPoly(Combiner):
    """ML-Poly: per-expert adaptive learning rates on positive regrets.

    Maintains cumulative regrets ``R_i`` and squared instantaneous
    regrets ``E_i``; weights are ``w_i ∝ η_i (R_i)₊`` with
    ``η_i = 1/(1 + E_i)``, falling back to uniform when all regrets are
    non-positive. This is the algorithm behind `opera::MLpol`.
    """

    name = "MLPol"

    def run(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        return self.run_with_weights(predictions, truth)[0]

    def run_with_weights(self, predictions: np.ndarray, truth: np.ndarray):
        P, y = validate_matrix(predictions, truth)
        T, m = P.shape
        regret = np.zeros(m)
        sq_regret = np.zeros(m)
        scale = _ScaleTracker()
        out = np.empty(T)
        weights = np.empty((T, m))
        for t in range(T):
            eta = 1.0 / (1.0 + sq_regret)
            positive = np.maximum(regret, 0.0) * eta
            total = positive.sum()
            w = positive / total if total > 0 else np.full(m, 1.0 / m)
            weights[t] = w
            pred = float(P[t] @ w)
            out[t] = pred
            scale.update(float(y[t]))
            norm = scale.squared_range
            agg_loss = (pred - y[t]) ** 2 / norm
            expert_loss = (P[t] - y[t]) ** 2 / norm
            instantaneous = np.clip(agg_loss - expert_loss, -1.0, 1.0)
            regret += instantaneous
            sq_regret += instantaneous ** 2
        return out, weights
