"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so that
callers can catch library-specific failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before ``fit``."""

    def __init__(self, estimator_name: str):
        super().__init__(
            f"{estimator_name} is not fitted yet; call 'fit' before using "
            "this method."
        )
        self.estimator_name = estimator_name


class DataValidationError(ReproError, ValueError):
    """Input data failed validation (wrong shape, NaNs, too short, ...)."""


class ConfigurationError(ReproError, ValueError):
    """An estimator or experiment was configured with invalid parameters."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before reaching its tolerance."""


class GradientError(ReproError):
    """Autograd failure: backward called on an invalid graph or shape."""
