"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so that
callers can catch library-specific failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before ``fit``."""

    def __init__(self, estimator_name: str):
        super().__init__(
            f"{estimator_name} is not fitted yet; call 'fit' before using "
            "this method."
        )
        self.estimator_name = estimator_name


class DataValidationError(ReproError, ValueError):
    """Input data failed validation (wrong shape, NaNs, too short, ...)."""


class ConfigurationError(ReproError, ValueError):
    """An estimator or experiment was configured with invalid parameters."""


class MemberFailureError(ReproError):
    """A guarded pool member failed at prediction time.

    Raised by :class:`repro.runtime.GuardedForecaster` in strict mode when
    a member call raises, times out, or returns non-finite output after
    the configured retries are exhausted.
    """

    def __init__(self, member: str, kind: str, detail: str):
        super().__init__(f"pool member {member!r} failed ({kind}): {detail}")
        self.member = member
        self.kind = kind
        self.detail = detail


class CircuitOpenError(MemberFailureError):
    """A call was denied because the member's circuit breaker is OPEN."""

    def __init__(self, member: str):
        super().__init__(member, "circuit_open", "breaker is quarantining this member")


class EnsembleUnavailableError(ReproError):
    """Every pool member is quarantined; no healthy forecast can be formed."""

    def __init__(self, step: int):
        super().__init__(
            f"ensemble unavailable at step {step}: every pool member is "
            "quarantined (circuit open) — no healthy prediction to combine"
        )
        self.step = step


class SerializationError(ReproError, KeyError):
    """A saved module/policy archive failed validation on load.

    Raised when an ``.npz`` archive is malformed or its key set / array
    shapes do not match the target module. Subclasses :class:`KeyError`
    so callers that historically caught the raw key mismatch keep
    working.
    """

    # KeyError.__str__ repr()s its single argument, which mangles
    # multi-word messages; restore normal exception formatting.
    def __str__(self) -> str:
        return Exception.__str__(self)


class CheckpointError(ReproError):
    """A checkpoint operation failed (I/O, schema, or context mismatch)."""


class CheckpointCorruptError(CheckpointError):
    """A snapshot failed integrity verification (torn write, bit rot).

    Snapshots that raise this during restore are quarantined and the
    manager falls back to the next most recent valid snapshot.
    """


class ServingError(ReproError):
    """Base class for errors raised by the online forecasting service."""


class SessionNotFoundError(ServingError, KeyError):
    """A request named a session the service does not know about."""

    def __init__(self, session_id: str):
        Exception.__init__(
            self, f"no such forecasting session: {session_id!r}"
        )
        self.session_id = session_id

    # KeyError.__str__ repr()s its argument; keep normal formatting.
    def __str__(self) -> str:
        return Exception.__str__(self)


class SessionExistsError(ServingError):
    """A create request named a session id that is already live."""

    def __init__(self, session_id: str):
        super().__init__(
            f"forecasting session already exists: {session_id!r}"
        )
        self.session_id = session_id


class ServiceOverloadedError(ServingError):
    """Admission control rejected a request (bounded queue full).

    Maps to HTTP 429: the client should back off and retry.
    """

    def __init__(self, queue_depth: int, queue_limit: int):
        super().__init__(
            f"request queue is full ({queue_depth}/{queue_limit}); "
            "back off and retry"
        )
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit


class DeadlineExceededError(ServingError):
    """A request spent longer than its deadline budget (HTTP 503)."""

    def __init__(self, deadline: float):
        super().__init__(
            f"request exceeded its {deadline:.3f}s deadline before "
            "completing"
        )
        self.deadline = deadline


class ServiceUnavailableError(ServingError):
    """The service refused a request (circuit open or shutting down)."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before reaching its tolerance."""


class GradientError(ReproError):
    """Autograd failure: backward called on an invalid graph or shape."""
