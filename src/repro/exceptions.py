"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so that
callers can catch library-specific failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before ``fit``."""

    def __init__(self, estimator_name: str):
        super().__init__(
            f"{estimator_name} is not fitted yet; call 'fit' before using "
            "this method."
        )
        self.estimator_name = estimator_name


class DataValidationError(ReproError, ValueError):
    """Input data failed validation (wrong shape, NaNs, too short, ...)."""


class ConfigurationError(ReproError, ValueError):
    """An estimator or experiment was configured with invalid parameters."""


class MemberFailureError(ReproError):
    """A guarded pool member failed at prediction time.

    Raised by :class:`repro.runtime.GuardedForecaster` in strict mode when
    a member call raises, times out, or returns non-finite output after
    the configured retries are exhausted.
    """

    def __init__(self, member: str, kind: str, detail: str):
        super().__init__(f"pool member {member!r} failed ({kind}): {detail}")
        self.member = member
        self.kind = kind
        self.detail = detail


class CircuitOpenError(MemberFailureError):
    """A call was denied because the member's circuit breaker is OPEN."""

    def __init__(self, member: str):
        super().__init__(member, "circuit_open", "breaker is quarantining this member")


class EnsembleUnavailableError(ReproError):
    """Every pool member is quarantined; no healthy forecast can be formed."""

    def __init__(self, step: int):
        super().__init__(
            f"ensemble unavailable at step {step}: every pool member is "
            "quarantined (circuit open) — no healthy prediction to combine"
        )
        self.step = step


class SerializationError(ReproError, KeyError):
    """A saved module/policy archive failed validation on load.

    Raised when an ``.npz`` archive is malformed or its key set / array
    shapes do not match the target module. Subclasses :class:`KeyError`
    so callers that historically caught the raw key mismatch keep
    working.
    """

    # KeyError.__str__ repr()s its single argument, which mangles
    # multi-word messages; restore normal exception formatting.
    def __str__(self) -> str:
        return Exception.__str__(self)


class CheckpointError(ReproError):
    """A checkpoint operation failed (I/O, schema, or context mismatch)."""


class CheckpointCorruptError(CheckpointError):
    """A snapshot failed integrity verification (torn write, bit rot).

    Snapshots that raise this during restore are quarantined and the
    manager falls back to the next most recent valid snapshot.
    """


class ServingError(ReproError):
    """Base class for errors raised by the online forecasting service."""


class SessionNotFoundError(ServingError, KeyError):
    """A request named a session the service does not know about."""

    def __init__(self, session_id: str):
        Exception.__init__(
            self, f"no such forecasting session: {session_id!r}"
        )
        self.session_id = session_id

    # KeyError.__str__ repr()s its argument; keep normal formatting.
    def __str__(self) -> str:
        return Exception.__str__(self)


class SessionExistsError(ServingError):
    """A create request named a session id that is already live."""

    def __init__(self, session_id: str):
        super().__init__(
            f"forecasting session already exists: {session_id!r}"
        )
        self.session_id = session_id


class ServiceOverloadedError(ServingError):
    """Admission control rejected a request (bounded queue full).

    Maps to HTTP 429: the client should back off and retry.
    ``retry_after`` is the suggested back-off in seconds, derived by the
    batcher from its current queue drain rate (how long until the queue
    has room again), and surfaced as the HTTP ``Retry-After`` header.
    """

    def __init__(
        self,
        queue_depth: int,
        queue_limit: int,
        retry_after: "float | None" = None,
    ):
        super().__init__(
            f"request queue is full ({queue_depth}/{queue_limit}); "
            "back off and retry"
        )
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        self.retry_after = 0.05 if retry_after is None else float(retry_after)


class SessionMigratingError(ServingError):
    """The session is mid-migration to another shard; retry shortly.

    Raised by the session store for requests that reach a worker after
    it released the session (final durable checkpoint written, spill
    directory handed to the new owner) — the request raced the
    handoff through the worker's queue. Retryable by construction: the
    supervisor re-routes and retries idempotent requests transparently,
    and the HTTP layer maps anything that escapes to a 503 with a
    ``Retry-After`` header.
    """

    #: Suggested client back-off, surfaced as the HTTP ``Retry-After``.
    retry_after: float = 0.1

    def __init__(self, session_id: str):
        super().__init__(
            f"session {session_id!r} is migrating to another shard; "
            "retry shortly"
        )
        self.session_id = session_id


class DeadlineExceededError(ServingError):
    """A request spent longer than its deadline budget (HTTP 503).

    ``deadline`` is the relative budget in seconds when known; requests
    carrying only an absolute propagated expiry pass ``None``.
    """

    def __init__(self, deadline: "float | None" = None):
        if deadline is None:
            super().__init__(
                "request exceeded its deadline before completing"
            )
        else:
            super().__init__(
                f"request exceeded its {deadline:.3f}s deadline before "
                "completing"
            )
        self.deadline = deadline


class ServiceUnavailableError(ServingError):
    """The service refused a request (circuit open or shutting down)."""


class SessionCorruptError(ServingError):
    """Every spill snapshot of a session failed integrity verification.

    Raised by the session store when a restore finds snapshots on disk
    but quarantines all of them as corrupt (torn writes, bit rot). The
    session's learned state is unrecoverable; the service may still
    answer from the degraded ensemble-average path, and the HTTP layer
    maps this to a typed 503 with a ``Retry-After`` header otherwise.
    The session id stays reserved until the client deletes or recreates
    the session.
    """

    #: Suggested client back-off, surfaced as the HTTP ``Retry-After``.
    retry_after: float = 1.0

    def __init__(self, session_id: str):
        super().__init__(
            f"session {session_id!r} has only corrupt spill snapshots "
            "(quarantined); its learned state is unrecoverable — delete "
            "and recreate the session, or accept degraded forecasts"
        )
        self.session_id = session_id


class WorkerCrashedError(ServingError):
    """A shard worker died (or was killed) with this request in flight.

    Internal to the shard runtime: the supervisor retries idempotent
    requests against the restarted shard and maps exhausted retries to
    :class:`ServiceUnavailableError` before anything reaches a client.
    """

    def __init__(self, shard: int, detail: str = "worker process died"):
        super().__init__(f"shard {shard}: {detail}")
        self.shard = shard


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before reaching its tolerance."""


class GradientError(ReproError):
    """Autograd failure: backward called on an invalid graph or shape."""
