"""The process-global telemetry session and its no-op fast path.

A single :class:`Telemetry` instance (:data:`OBS`) lives for the whole
process; instrumented call sites hold a module-level reference and guard
every recording with one attribute check::

    from repro.obs import OBS
    ...
    if OBS.enabled:
        OBS.registry.counter("repro_online_steps_total").inc()

so a telemetry-off run pays one boolean attribute read per call site and
allocates nothing. Spans follow the same pattern internally —
``OBS.span(name)`` returns a shared no-op context manager while
disabled.

Sessions are started with :func:`configure` (or the
:func:`session` context manager) and ended with :func:`shutdown`, which
flushes every sink — the :class:`~repro.obs.sinks.PromTextSink` writes
its exposition file there. :class:`TelemetryConfig` is the user-facing
knob, surfaced as ``EADRLConfig.telemetry`` and the CLI's
``--metrics-out/--trace/--log-level`` flags.

Determinism contract: telemetry only *reads* model state — it never
touches an RNG and never feeds a value back into a computation, so
telemetry-on runs are bit-identical to telemetry-off runs (enforced by
``tests/obs/test_determinism.py``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exceptions import ConfigurationError
from repro.obs.log import LEVELS, configure_logging
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import JsonlSink, PromTextSink, Sink
from repro.obs.spans import NOOP_SPAN, SpanNode, SpanTracker


@dataclass
class TelemetryConfig:
    """User-facing telemetry switches.

    Attributes
    ----------
    enabled:
        Master switch; ``False`` keeps every call site on the no-op fast
        path even when sinks are configured.
    metrics_path:
        When set, a :class:`~repro.obs.sinks.PromTextSink` writes the
        Prometheus text exposition here at shutdown/flush.
    trace_path:
        When set, a :class:`~repro.obs.sinks.JsonlSink` streams
        structured run events (one JSON object per line) here.
    log_level:
        When set (``"debug"``/``"info"``/``"warning"``/``"error"``),
        :func:`repro.obs.configure_logging` is invoked at activation.
    flush_interval:
        When set (seconds, > 0), a :class:`PeriodicFlusher` daemon
        thread calls :meth:`Telemetry.flush` — which drives
        ``Sink.write_metrics`` on every sink — at this period, so
        long-lived processes (the forecasting service) publish metrics
        continuously instead of only at shutdown.
    """

    enabled: bool = True
    metrics_path: Optional[str] = None
    trace_path: Optional[str] = None
    log_level: Optional[str] = None
    flush_interval: Optional[float] = None

    def validate(self) -> None:
        if self.log_level is not None and self.log_level.lower() not in LEVELS:
            raise ConfigurationError(
                f"log_level must be one of {sorted(LEVELS)}, "
                f"got {self.log_level!r}"
            )
        if self.flush_interval is not None and self.flush_interval <= 0:
            raise ConfigurationError(
                f"flush_interval must be > 0 seconds, "
                f"got {self.flush_interval}"
            )


class PeriodicFlusher(threading.Thread):
    """Daemon thread flushing a telemetry session at a fixed period.

    Each tick calls :meth:`Telemetry.flush`, which pushes the current
    registry state through ``Sink.write_metrics`` and flushes buffered
    event output — a :class:`~repro.obs.sinks.PromTextSink` therefore
    republishes its exposition file continuously, not only at process
    end. Started by :meth:`Telemetry.configure` when
    ``TelemetryConfig.flush_interval`` is set (or constructed directly
    around any sink set); stopped by :meth:`Telemetry.shutdown`.
    """

    def __init__(self, telemetry: "Telemetry", interval: float):
        if interval <= 0:
            raise ConfigurationError(
                f"flusher interval must be > 0, got {interval}"
            )
        super().__init__(name="repro-obs-flusher", daemon=True)
        self.interval = float(interval)
        self.flush_count = 0
        self._telemetry = telemetry
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self._telemetry.flush()
                self.flush_count += 1
            except Exception:  # pragma: no cover - never kill the app
                # A failing sink must not take the flusher thread down;
                # the final shutdown flush will surface persistent
                # problems to the caller.
                pass

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread to exit and join it (idempotent)."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)


class Telemetry:
    """One telemetry session: registry + sinks + span tracker + events."""

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.sinks: list = []
        self._seq = 0
        self._lock = threading.Lock()
        self._spans = SpanTracker(self._finish_root_span, self._close_span)
        self._flusher: Optional[PeriodicFlusher] = None

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def configure(
        self,
        config: Optional[TelemetryConfig] = None,
        sinks: Iterable[Sink] = (),
    ) -> "Telemetry":
        """Start a fresh session (flushing any previous one first)."""
        self.shutdown()
        new_sinks = list(sinks)
        enabled = bool(new_sinks)
        if config is not None:
            config.validate()
            if config.trace_path:
                new_sinks.append(JsonlSink(config.trace_path))
            if config.metrics_path:
                new_sinks.append(PromTextSink(config.metrics_path))
            if config.log_level:
                configure_logging(level=config.log_level)
            enabled = config.enabled
        self.registry = MetricsRegistry()
        self.sinks = new_sinks
        self._seq = 0
        self.enabled = enabled
        interval = config.flush_interval if config is not None else None
        if enabled and interval is not None and self.sinks:
            self._flusher = PeriodicFlusher(self, interval)
            self._flusher.start()
        return self

    def shutdown(self) -> None:
        """Flush metrics into every sink, close them, and disable.

        The registry is left readable so callers can inspect final
        values after shutdown. Safe to call when never configured.
        """
        self.enabled = False
        flusher, self._flusher = self._flusher, None
        if flusher is not None:
            flusher.stop()
        sinks, self.sinks = self.sinks, []
        for sink in sinks:
            sink.write_metrics(self.registry)
            sink.flush()
            sink.close()

    def flush(self) -> None:
        """Push buffered sink output (metrics exposition included)."""
        for sink in self.sinks:
            sink.write_metrics(self.registry)
            sink.flush()

    # ------------------------------------------------------------------
    # Recording primitives
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Send one structured run event to every sink (enabled only)."""
        if not self.enabled:
            return
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "ts": round(time.time(), 6),
                     "event": kind}
            event.update(fields)
            for sink in self.sinks:
                sink.emit(event)

    def span(self, name: str):
        """Context manager timing a (possibly nested) region."""
        if not self.enabled:
            return NOOP_SPAN
        return self._spans.span(name)

    def _close_span(self, node: SpanNode) -> None:
        self.registry.histogram(
            "repro_span_seconds", {"span": node.name}
        ).observe(node.duration)
        if node.dropped_children:
            # The child cap in spans.py truncates silently at record
            # time; surface the loss so a short tree is visibly
            # incomplete rather than quietly wrong.
            self.registry.counter(
                "repro_obs_spans_dropped_total", {"source": "span_tree"}
            ).inc(node.dropped_children)

    def _finish_root_span(self, node: SpanNode) -> None:
        self.emit("span", span=node.name, seconds=node.duration,
                  tree=node.to_dict())


#: The process-global telemetry session. Never replaced — call sites may
#: cache a module-level reference; :func:`configure` mutates it in place.
OBS = Telemetry()


def configure(
    config: Optional[TelemetryConfig] = None, sinks: Iterable[Sink] = ()
) -> Telemetry:
    """Start a global telemetry session (see :class:`Telemetry`)."""
    return OBS.configure(config, sinks=sinks)


def shutdown() -> None:
    """End the global session, flushing and closing every sink."""
    OBS.shutdown()


def enabled() -> bool:
    """Whether the global session is currently recording."""
    return OBS.enabled


@contextmanager
def session(
    config: Optional[TelemetryConfig] = None, sinks: Iterable[Sink] = ()
):
    """Scoped global session: configures on entry, shuts down on exit."""
    telemetry = configure(config, sinks=sinks)
    try:
        yield telemetry
    finally:
        shutdown()
