"""Nested wall-clock span trees.

``Telemetry.span(name)`` (see :mod:`repro.obs.telemetry`) opens a span;
spans opened while another is active on the same thread become its
children, so a ``repro forecast`` run produces a tree like::

    eadrl.fit
    ├── pool.fit
    ├── pool.prediction_matrix
    └── ddpg.train

Every span's duration is also observed into the registry histogram
``repro_span_seconds{span=<name>}``; when a *root* span closes, its full
tree is emitted as one structured ``span`` event to the active sinks.
Hot loops (e.g. ``online.step``) can open thousands of sibling spans;
each node therefore caps recorded children (the rest are counted in
``dropped_children``) while the histogram still sees every observation.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

#: Children kept per node before aggregation into ``dropped_children``.
MAX_CHILDREN = 64


class SpanNode:
    """One timed region; ``duration`` is set when the span closes."""

    __slots__ = ("name", "start", "duration", "children", "dropped_children")

    def __init__(self, name: str):
        self.name = name
        self.start = 0.0
        self.duration = 0.0
        self.children: List["SpanNode"] = []
        self.dropped_children = 0

    def add_child(self, child: "SpanNode") -> None:
        if len(self.children) < MAX_CHILDREN:
            self.children.append(child)
        else:
            self.dropped_children += 1

    def to_dict(self) -> dict:
        node = {"name": self.name, "seconds": self.duration}
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        if self.dropped_children:
            node["dropped_children"] = self.dropped_children
        return node


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path.

    ``node`` is a class attribute so hot loops can read ``span.node``
    unconditionally — a plain attribute hit for both live and no-op
    spans, instead of a ``getattr`` default that raises internally on
    every disabled iteration.
    """

    __slots__ = ()

    node: Optional[SpanNode] = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Span:
    """Live span context manager bound to a :class:`SpanTracker`."""

    __slots__ = ("_tracker", "node")

    def __init__(self, tracker: "SpanTracker", name: str):
        self._tracker = tracker
        self.node = SpanNode(name)

    def __enter__(self) -> "Span":
        self._tracker._push(self.node)
        self.node.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.node.duration = time.perf_counter() - self.node.start
        self._tracker._pop(self.node)
        return None


class SpanTracker:
    """Per-thread span stacks feeding a root-completion callback."""

    def __init__(self, on_root, on_close=None):
        self._local = threading.local()
        self._on_root = on_root
        self._on_close = on_close

    def _stack(self) -> List[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str) -> Span:
        return Span(self, name)

    def current(self) -> Optional[SpanNode]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, node: SpanNode) -> None:
        self._stack().append(node)

    def _pop(self, node: SpanNode) -> None:
        stack = self._stack()
        if stack and stack[-1] is node:
            stack.pop()
        elif node in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(node)
        if self._on_close is not None:
            self._on_close(node)
        if stack:
            stack[-1].add_child(node)
        else:
            self._on_root(node)
