"""Observability core: metrics, span tracing, run events, logging.

Dependency-free (stdlib + numpy) telemetry for the EA-DRL runtime:

- :class:`MetricsRegistry` — thread-safe counters, gauges, and
  fixed-bucket histograms with p50/p95/p99 summaries
  (:mod:`repro.obs.registry`);
- :data:`OBS` / :func:`configure` / :func:`session` — the process-global
  telemetry session with a one-attribute-check no-op fast path
  (:mod:`repro.obs.telemetry`);
- ``OBS.span(name)`` — nested wall-clock timing trees
  (:mod:`repro.obs.spans`);
- :class:`JsonlSink` / :class:`PromTextSink` / :class:`MemorySink` —
  pluggable outputs (:mod:`repro.obs.sinks`);
- :func:`get_logger` / :func:`configure_logging` — the stdlib-logging
  wrapper used by library code instead of ``print``
  (:mod:`repro.obs.log`).

See ``docs/observability.md`` for the metric catalogue, sink formats,
and measured overhead.
"""

from repro.obs.log import configure_logging, get_logger, resolve_level
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prom_text,
)
from repro.obs.sinks import JsonlSink, MemorySink, PromTextSink, Sink
from repro.obs.spans import SpanNode, SpanTracker
from repro.obs.telemetry import (
    OBS,
    PeriodicFlusher,
    Telemetry,
    TelemetryConfig,
    configure,
    enabled,
    session,
    shutdown,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "OBS",
    "PeriodicFlusher",
    "PromTextSink",
    "Sink",
    "SpanNode",
    "SpanTracker",
    "Telemetry",
    "TelemetryConfig",
    "configure",
    "configure_logging",
    "enabled",
    "get_logger",
    "render_prom_text",
    "resolve_level",
    "session",
    "shutdown",
]
