"""Observability core: metrics, span tracing, run events, logging.

Dependency-free (stdlib + numpy) telemetry for the EA-DRL runtime:

- :class:`MetricsRegistry` — thread-safe counters, gauges, and
  fixed-bucket histograms with p50/p95/p99 summaries, bounded per-name
  series cardinality, and mergeable snapshots
  (:mod:`repro.obs.registry`);
- :data:`OBS` / :func:`configure` / :func:`session` — the process-global
  telemetry session with a one-attribute-check no-op fast path
  (:mod:`repro.obs.telemetry`);
- ``OBS.span(name)`` — nested wall-clock timing trees
  (:mod:`repro.obs.spans`);
- :data:`TRACER` / :class:`TraceAssembler` — cross-process request
  tracing for the serving runtime: per-process JSONL span sinks,
  ``X-Trace-Id`` / RPC-envelope propagation, and offline assembly into
  per-request timelines (:mod:`repro.obs.trace`, ``repro trace`` CLI);
- :class:`JsonlSink` / :class:`PromTextSink` / :class:`MemorySink` —
  pluggable outputs (:mod:`repro.obs.sinks`);
- :func:`get_logger` / :func:`configure_logging` — the stdlib-logging
  wrapper used by library code instead of ``print``
  (:mod:`repro.obs.log`).

See ``docs/observability.md`` for the metric catalogue, the trace
model, sink formats, and measured overhead.
"""

from repro.obs.log import configure_logging, get_logger, resolve_level
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    FAST_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_prom_snapshot,
    render_prom_text,
    sanitize_metric_name,
)
from repro.obs.sinks import JsonlSink, MemorySink, PromTextSink, Sink
from repro.obs.spans import SpanNode, SpanTracker
from repro.obs.telemetry import (
    OBS,
    PeriodicFlusher,
    Telemetry,
    TelemetryConfig,
    configure,
    enabled,
    session,
    shutdown,
)
from repro.obs.trace import (
    NEW_TRACE,
    NOOP_TRACE_SPAN,
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    TRACER,
    AssembledTrace,
    SpanRecord,
    TraceAssembler,
    TraceContext,
    Tracer,
    assemble_trace_dir,
    disable_tracing,
    enable_tracing,
    iter_trace_records,
)

__all__ = [
    "AssembledTrace",
    "Counter",
    "DEFAULT_BUCKETS",
    "FAST_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NEW_TRACE",
    "NOOP_TRACE_SPAN",
    "OBS",
    "PARENT_SPAN_HEADER",
    "PeriodicFlusher",
    "PromTextSink",
    "Sink",
    "SpanNode",
    "SpanRecord",
    "SpanTracker",
    "TRACE_ID_HEADER",
    "TRACER",
    "Telemetry",
    "TelemetryConfig",
    "TraceAssembler",
    "TraceContext",
    "Tracer",
    "assemble_trace_dir",
    "configure",
    "configure_logging",
    "disable_tracing",
    "enable_tracing",
    "enabled",
    "get_logger",
    "iter_trace_records",
    "merge_snapshots",
    "render_prom_snapshot",
    "render_prom_text",
    "resolve_level",
    "sanitize_metric_name",
    "session",
    "shutdown",
]
