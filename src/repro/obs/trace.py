"""Distributed request tracing across the serving runtime's processes.

The PR 3 span trees (:mod:`repro.obs.spans`) time nested regions inside
*one* process. The serving stack spans several — HTTP frontend →
micro-batcher → shard RPC → worker → store/pool/actor — so explaining a
slow request needs spans that share one **trace id** across process
boundaries. This module provides exactly that, dependency-free:

- :class:`TraceContext` — ``(trace_id, span_id, baggage)`` minted at
  ingress (or adopted from an ``X-Trace-Id`` header) and propagated
  through thread hops (captured explicitly by the micro-batcher) and
  process hops (a ``trace`` dict on the shard RPC envelope);
- :class:`Tracer` / :data:`TRACER` — the process-global recorder. Each
  process appends finished spans to **its own** JSONL file
  (``trace-<process>.<pid>.jsonl`` under a shared directory), so no
  cross-process synchronisation exists on the hot path. Disabled (the
  default) every call site costs one attribute read and
  :data:`NOOP_TRACE_SPAN`;
- :class:`TraceAssembler` — reads any number of those files and
  stitches per-request timelines back together: parent/child trees
  across processes, wall-time coverage, a critical-path breakdown
  (queue wait, coalesce wait, RPC, restore/spill, pool eval, actor
  forward, checkpoint), and links from coalesced requests to their
  shared batch span. Surfaced as the ``repro trace`` CLI.

Span records are plain JSON lines::

    {"trace": ..., "span": ..., "parent": ..., "name": "rpc.shard",
     "process": "frontend", "pid": 123, "start": <unix s>,
     "dur": <s>, "attrs": {"shard": 2}}

plus ``{"meta": ...}`` lines carrying per-process drop counters, so a
truncated trace is visibly incomplete instead of silently short
(``repro_obs_spans_dropped_total{source="trace"}`` counts the same
drops in the metrics registry).

Determinism contract: tracing only *reads* request state — outputs of a
traced run are bit-identical to an untraced one, and the disabled fast
path stays inside the PR 3 overhead budget.
"""

from __future__ import annotations

import atexit
import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: HTTP header names for context propagation (request and response).
TRACE_ID_HEADER = "X-Trace-Id"
PARENT_SPAN_HEADER = "X-Parent-Span"

#: Ids are lowercase hex; anything else from a client is re-minted.
_ID_PATTERN = re.compile(r"^[0-9a-f]{8,32}$")

#: Spans recorded per process before further spans are dropped (and
#: counted — see ``Tracer.dropped``).
MAX_SPANS_PER_PROCESS = 200_000

#: Sentinel for ``Tracer.span(parent=NEW_TRACE)``: force a fresh root
#: trace even when an ambient context is active (the shared batch span).
NEW_TRACE = object()


def new_id() -> str:
    """A fresh 64-bit lowercase-hex id (trace or span)."""
    return os.urandom(8).hex()


class TraceContext:
    """Immutable propagation token: which trace, under which span."""

    __slots__ = ("trace_id", "span_id", "baggage")

    def __init__(
        self,
        trace_id: str,
        span_id: Optional[str] = None,
        baggage: Optional[Mapping[str, str]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.baggage = dict(baggage) if baggage else {}

    def child(self, span_id: str) -> "TraceContext":
        return TraceContext(self.trace_id, span_id, self.baggage)

    def to_wire(self) -> Dict[str, Any]:
        """Pipe/JSON-safe form for the shard RPC envelope."""
        wire: Dict[str, Any] = {"t": self.trace_id, "s": self.span_id}
        if self.baggage:
            wire["b"] = self.baggage
        return wire

    @classmethod
    def from_wire(cls, wire: Any) -> Optional["TraceContext"]:
        if not isinstance(wire, dict) or "t" not in wire:
            return None
        return cls(str(wire["t"]), wire.get("s"), wire.get("b"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id}, span={self.span_id})"


class _NoopTraceSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    ctx: Optional[TraceContext] = None

    def __enter__(self) -> "_NoopTraceSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NOOP_TRACE_SPAN = _NoopTraceSpan()


class TraceSpan:
    """One live cross-process span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "ctx", "parent_id", "attrs",
                 "start", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        ctx: TraceContext,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        #: The span's own context — children parent to ``ctx.span_id``.
        self.ctx = ctx
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "TraceSpan":
        self._tracer._push(self.ctx)
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._t0
        self._tracer._pop(self.ctx)
        self._tracer._record(
            self.name, self.ctx.trace_id, self.ctx.span_id,
            self.parent_id, self.start, duration, self.attrs,
        )
        return None


class Tracer:
    """Per-process trace recorder with an ambient-context stack.

    One instance (:data:`TRACER`) lives per process; :meth:`enable`
    points it at a JSONL file inside a shared trace directory. Contexts
    propagate implicitly down a thread (``span`` pushes its context on
    a thread-local stack) and explicitly across threads and processes
    (``current()`` → capture, ``activate``/``parent=`` → restore).
    """

    def __init__(self) -> None:
        self.enabled = False
        self.process = ""
        self.path: Optional[Path] = None
        self.recorded = 0
        self.dropped = 0
        self.max_spans = MAX_SPANS_PER_PROCESS
        self._handle = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(
        self,
        trace_dir,
        process: str,
        *,
        max_spans: int = MAX_SPANS_PER_PROCESS,
    ) -> "Tracer":
        """Start appending this process's spans under ``trace_dir``.

        The file name embeds ``process`` and the pid, so a respawned
        shard worker (same role, new pid) never interleaves with its
        predecessor's file.
        """
        self.disable()
        directory = Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        self.process = str(process)
        self.path = directory / f"trace-{self.process}.{os.getpid()}.jsonl"
        # Line-buffered append: one write per span, atomic enough for
        # same-file readers, nothing lost to a crash but the last line.
        self._handle = self.path.open("a", encoding="utf-8", buffering=1)
        self.recorded = 0
        self.dropped = 0
        self.max_spans = int(max_spans)
        self.enabled = True
        self._write({"meta": "tracer_start", "process": self.process,
                     "pid": os.getpid(), "ts": round(time.time(), 6)})
        if not self._atexit_registered:
            # Workers exit via os-level teardown paths; make sure the
            # drop counters still land in the file.
            atexit.register(self.disable)
            self._atexit_registered = True
        return self

    def disable(self) -> None:
        """Write the final drop-count meta line and close the sink."""
        if not self.enabled:
            return
        self.enabled = False
        self._write({"meta": "tracer_stop", "process": self.process,
                     "pid": os.getpid(), "recorded": self.recorded,
                     "dropped": self.dropped})
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - close race
                pass

    # ------------------------------------------------------------------
    # Ambient context
    # ------------------------------------------------------------------
    def _stack(self) -> List[TraceContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, ctx: TraceContext) -> None:
        self._stack().append(ctx)

    def _pop(self, ctx: TraceContext) -> None:
        stack = self._stack()
        if stack and stack[-1] is ctx:
            stack.pop()
        elif ctx in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(ctx)

    def current(self) -> Optional[TraceContext]:
        """The ambient context of this thread, if a span is open."""
        stack = self._stack()
        return stack[-1] if stack else None

    class _Activation:
        __slots__ = ("_tracer", "_ctx")

        def __init__(self, tracer: "Tracer", ctx: TraceContext):
            self._tracer = tracer
            self._ctx = ctx

        def __enter__(self):
            self._tracer._push(self._ctx)
            return self._ctx

        def __exit__(self, *exc_info):
            self._tracer._pop(self._ctx)
            return None

    def activate(self, ctx: TraceContext) -> "Tracer._Activation":
        """Reinstate a captured context on this thread (thread hop)."""
        return Tracer._Activation(self, ctx)

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(self, name: str, parent=None, **attrs):
        """Open a span: child of ``parent`` (or the ambient context).

        ``parent=None`` uses the ambient context, minting a fresh root
        trace when there is none (service ingress). ``parent=NEW_TRACE``
        always mints a root (the shared batch span). Disabled tracers
        return :data:`NOOP_TRACE_SPAN`.
        """
        if not self.enabled:
            return NOOP_TRACE_SPAN
        if parent is NEW_TRACE:
            parent_ctx = None
        else:
            parent_ctx = parent if parent is not None else self.current()
        span_id = new_id()
        if parent_ctx is None:
            ctx = TraceContext(new_id(), span_id, attrs.pop("baggage", None))
            parent_id = None
        else:
            ctx = parent_ctx.child(span_id)
            parent_id = parent_ctx.span_id
        return TraceSpan(self, name, ctx, parent_id, attrs)

    def child_span(self, name: str, **attrs):
        """A span only when a request trace is already active.

        Inner layers (store, pool, actor) use this so library calls
        outside any request never mint orphan single-span traces.
        """
        if not self.enabled or self.current() is None:
            return NOOP_TRACE_SPAN
        return self.span(name, **attrs)

    def record(
        self,
        name: str,
        ctx: TraceContext,
        *,
        start: float,
        duration: float,
        **attrs,
    ) -> None:
        """Record an after-the-fact span under ``ctx`` (queue waits)."""
        if not self.enabled:
            return
        self._record(
            name, ctx.trace_id, new_id(), ctx.span_id,
            start, duration, attrs,
        )

    # ------------------------------------------------------------------
    # Wire formats
    # ------------------------------------------------------------------
    def from_headers(self, headers) -> Optional[TraceContext]:
        """Adopt a client-supplied ``X-Trace-Id`` (ignored if invalid)."""
        trace_id = headers.get(TRACE_ID_HEADER)
        if not trace_id:
            return None
        trace_id = trace_id.strip().lower()
        if not _ID_PATTERN.match(trace_id):
            return None
        parent = headers.get(PARENT_SPAN_HEADER)
        if parent:
            parent = parent.strip().lower()
            if not _ID_PATTERN.match(parent):
                parent = None
        return TraceContext(trace_id, parent)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        duration: float,
        attrs: Dict[str, Any],
    ) -> None:
        with self._lock:
            if self.recorded >= self.max_spans:
                self.dropped += 1
                self._count_drop()
                return
            self.recorded += 1
        record = {
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "name": name,
            "process": self.process,
            "pid": os.getpid(),
            "start": round(start, 6),
            "dur": duration,
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def _count_drop(self) -> None:
        # Imported lazily: obs.telemetry imports are cheap but this
        # module must stay importable before the registry exists.
        from repro.obs.telemetry import OBS

        if OBS.enabled:
            OBS.registry.counter(
                "repro_obs_spans_dropped_total", {"source": "trace"}
            ).inc()

    def _write(self, obj: Dict[str, Any]) -> None:
        handle = self._handle
        if handle is None:
            return
        try:
            with self._lock:
                handle.write(json.dumps(obj, default=str) + "\n")
        except (OSError, ValueError):  # pragma: no cover - sink gone
            pass


#: The process-global tracer. Call sites hold a module reference and
#: pay one attribute read while disabled, mirroring :data:`OBS`.
TRACER = Tracer()


def enable_tracing(trace_dir, process: str, **kwargs) -> Tracer:
    """Point this process's :data:`TRACER` at ``trace_dir``."""
    return TRACER.enable(trace_dir, process, **kwargs)


def disable_tracing() -> None:
    """Stop recording and flush the drop-count meta line."""
    TRACER.disable()


# ======================================================================
# Assembly: stitch per-process files into per-request timelines
# ======================================================================

#: Span-name → critical-path category used by the breakdown.
SPAN_CATEGORIES = {
    "http.request": "http",
    "service.observe": "service",
    "service.predict": "service",
    "service.create": "service",
    "service.info": "service",
    "service.close": "service",
    "batcher.queue": "queue_wait",
    "batcher.coalesce": "coalesce_wait",
    "batcher.exec": "exec",
    "batcher.batch": "batch_exec",
    "rpc.shard": "rpc",
    "worker.handle": "worker",
    "store.restore": "restore",
    "store.spill": "spill",
    "store.checkpoint": "checkpoint",
    "session.step": "session_step",
    "pool.eval": "pool_eval",
    "actor.forward": "actor_forward",
}


class SpanRecord:
    """One parsed span line."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "process",
                 "pid", "start", "duration", "attrs")

    def __init__(self, record: Mapping[str, Any]):
        self.trace_id = str(record["trace"])
        self.span_id = str(record["span"])
        parent = record.get("parent")
        self.parent_id = str(parent) if parent is not None else None
        self.name = str(record.get("name", "?"))
        self.process = str(record.get("process", "?"))
        self.pid = int(record.get("pid", 0))
        self.start = float(record.get("start", 0.0))
        self.duration = float(record.get("dur", 0.0))
        self.attrs = dict(record.get("attrs") or {})

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def category(self) -> str:
        return SPAN_CATEGORIES.get(self.name, "other")


def _union_seconds(intervals: List[tuple]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


class AssembledTrace:
    """All spans of one trace id, stitched across processes."""

    def __init__(self, trace_id: str, spans: List[SpanRecord]):
        self.trace_id = trace_id
        self.spans = sorted(spans, key=lambda s: (s.start, s.duration))
        self._by_id = {s.span_id: s for s in self.spans}

    @property
    def root(self) -> Optional[SpanRecord]:
        """Earliest span whose parent is absent from the trace."""
        roots = [
            s for s in self.spans
            if s.parent_id is None or s.parent_id not in self._by_id
        ]
        if not roots:
            return None
        return max(roots, key=lambda s: s.duration)

    @property
    def processes(self) -> List[str]:
        return sorted({s.process for s in self.spans})

    @property
    def orphans(self) -> int:
        """Spans whose recorded parent never made it to a sink."""
        return sum(
            1 for s in self.spans
            if s.parent_id is not None and s.parent_id not in self._by_id
        )

    def children(self, span: SpanRecord) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # ------------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of the root span's wall time covered by sub-spans.

        The union of every non-root span interval, clipped to the root
        interval, over the root duration — 1.0 means every moment of
        the request is attributed to some recorded stage.
        """
        root = self.root
        if root is None or root.duration <= 0:
            return 0.0
        intervals = []
        for span in self.spans:
            if span is root:
                continue
            start = max(span.start, root.start)
            end = min(span.end, root.end)
            if end > start:
                intervals.append((start, end))
        return min(1.0, _union_seconds(intervals) / root.duration)

    def breakdown(self) -> Dict[str, float]:
        """Critical-path attribution: per-category *self* seconds.

        Each span's self time is its duration minus its in-trace
        children's, so nested stages (RPC → worker → restore) never
        double-count; categories follow :data:`SPAN_CATEGORIES`.
        """
        out: Dict[str, float] = {}
        for span in self.spans:
            child_time = sum(c.duration for c in self.children(span))
            self_time = max(0.0, span.duration - child_time)
            out[span.category] = out.get(span.category, 0.0) + self_time
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def batch_links(self) -> List[Dict[str, str]]:
        """(batch_trace, batch_span) links recorded by coalesced spans."""
        links = []
        seen = set()
        for span in self.spans:
            batch_span = span.attrs.get("batch_span")
            if batch_span and batch_span not in seen:
                seen.add(batch_span)
                links.append({
                    "batch_span": str(batch_span),
                    "batch_trace": str(span.attrs.get("batch_trace", "")),
                })
        return links

    # ------------------------------------------------------------------
    def render(self, assembler: Optional["TraceAssembler"] = None) -> str:
        """Human-readable timeline tree with the breakdown footer."""
        lines: List[str] = []
        root = self.root
        if root is None:
            return f"trace {self.trace_id}: no root span recovered"
        header = (
            f"trace {self.trace_id}  {root.duration * 1e3:.2f} ms  "
            f"{root.name}"
        )
        detail = " ".join(
            f"{k}={v}" for k, v in root.attrs.items() if k != "baggage"
        )
        if detail:
            header += f"  [{detail}]"
        lines.append(header)

        def walk(span: SpanRecord, prefix: str) -> None:
            kids = sorted(self.children(span), key=lambda s: s.start)
            for i, child in enumerate(kids):
                last = i == len(kids) - 1
                branch = "└─ " if last else "├─ "
                offset = (child.start - root.start) * 1e3
                attrs = " ".join(
                    f"{k}={v}" for k, v in child.attrs.items()
                )
                lines.append(
                    f"{prefix}{branch}{child.name} "
                    f"[{child.process}]  +{offset:.2f} ms  "
                    f"{child.duration * 1e3:.2f} ms"
                    + (f"  {attrs}" if attrs else "")
                )
                walk(child, prefix + ("   " if last else "│  "))

        walk(root, "  ")
        for orphan in [
            s for s in self.spans
            if s is not root and s.parent_id is not None
            and s.parent_id not in self._by_id
        ]:
            lines.append(
                f"  ?─ {orphan.name} [{orphan.process}]  (orphan: parent "
                f"{orphan.parent_id} not recorded)"
            )
        parts = "  ".join(
            f"{category}={seconds * 1e3:.2f}ms"
            for category, seconds in self.breakdown().items()
        )
        lines.append(f"  critical path: {parts}")
        lines.append(
            f"  coverage {self.coverage() * 100:.1f}%  "
            f"spans {len(self.spans)}  processes "
            f"{','.join(self.processes)}"
        )
        links = self.batch_links()
        if links and assembler is not None:
            for link in links:
                batch = assembler.span(link["batch_span"])
                if batch is not None:
                    lines.append(
                        f"  linked batch span {link['batch_span']} "
                        f"({batch.attrs.get('requests', '?')} request(s), "
                        f"{batch.duration * 1e3:.2f} ms)"
                    )
        return "\n".join(lines)


class TraceAssembler:
    """Stitch JSONL span files from many processes into timelines."""

    def __init__(self) -> None:
        self._spans: Dict[str, List[SpanRecord]] = {}
        self._index: Dict[str, SpanRecord] = {}
        #: Per-process drop counts from ``tracer_stop`` meta lines.
        self.dropped: Dict[str, int] = {}
        self.files_read = 0
        self.malformed_lines = 0

    # ------------------------------------------------------------------
    def add_span(self, record: Mapping[str, Any]) -> None:
        if "meta" in record:
            if record.get("meta") == "tracer_stop":
                process = str(record.get("process", "?"))
                self.dropped[process] = (
                    self.dropped.get(process, 0)
                    + int(record.get("dropped", 0))
                )
            return
        span = SpanRecord(record)
        self._spans.setdefault(span.trace_id, []).append(span)
        self._index[span.span_id] = span

    def add_file(self, path) -> "TraceAssembler":
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    self.add_span(json.loads(line))
                except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                    # A torn final line from a killed process is
                    # expected; count it instead of failing assembly.
                    self.malformed_lines += 1
        self.files_read += 1
        return self

    def add_path(self, path) -> "TraceAssembler":
        """A file, or a directory of ``*.jsonl`` trace files."""
        p = Path(path)
        if p.is_dir():
            for child in sorted(p.glob("*.jsonl")):
                self.add_file(child)
        else:
            self.add_file(p)
        return self

    # ------------------------------------------------------------------
    def span(self, span_id: str) -> Optional[SpanRecord]:
        """Cross-trace span lookup (resolves batch links)."""
        return self._index.get(span_id)

    def traces(self) -> List[AssembledTrace]:
        """All assembled traces, earliest root first."""
        assembled = [
            AssembledTrace(trace_id, spans)
            for trace_id, spans in self._spans.items()
        ]
        assembled.sort(
            key=lambda t: t.root.start if t.root is not None else 0.0
        )
        return assembled

    def trace(self, trace_id: str) -> Optional[AssembledTrace]:
        spans = self._spans.get(trace_id)
        if spans is None:
            return None
        return AssembledTrace(trace_id, spans)

    @property
    def spans_dropped(self) -> int:
        """Total spans dropped across every process that reported."""
        return sum(self.dropped.values())

    def report(
        self,
        *,
        root_name: Optional[str] = None,
        limit: int = 20,
    ) -> Dict[str, Any]:
        """Machine-readable summary used by the bench gate and CLI."""
        traces = self.traces()
        if root_name is not None:
            traces = [
                t for t in traces
                if t.root is not None and t.root.name == root_name
            ]
        rows = []
        for t in traces[:limit]:
            root = t.root
            rows.append({
                "trace_id": t.trace_id,
                "root": root.name if root is not None else None,
                "duration_ms": (
                    root.duration * 1e3 if root is not None else None
                ),
                "spans": len(t.spans),
                "processes": t.processes,
                "coverage": t.coverage(),
                "orphans": t.orphans,
                "breakdown_ms": {
                    k: v * 1e3 for k, v in t.breakdown().items()
                },
                "batch_links": t.batch_links(),
            })
        return {
            "traces": rows,
            "n_traces": len(traces),
            "files_read": self.files_read,
            "malformed_lines": self.malformed_lines,
            "spans_dropped": self.spans_dropped,
            "dropped_by_process": dict(self.dropped),
        }


def assemble_trace_dir(trace_dir) -> TraceAssembler:
    """Convenience: assembler over every ``*.jsonl`` in a directory."""
    return TraceAssembler().add_path(trace_dir)


def iter_trace_records(paths: Iterable) -> Iterable[Dict[str, Any]]:
    """Raw span/meta records from files (artifact concatenation)."""
    for path in paths:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue
