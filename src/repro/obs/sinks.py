"""Pluggable telemetry sinks.

A sink receives two kinds of output from the active
:class:`~repro.obs.telemetry.Telemetry` session:

- ``emit(event)`` — one structured run event (a plain dict) at a time,
  in order;
- ``write_metrics(registry)`` — the final registry state at flush /
  shutdown time.

Three implementations cover the tentpole surface: :class:`JsonlSink`
(one JSON object per line — run events and span trees),
:class:`PromTextSink` (Prometheus text exposition of the registry,
rewritten on every flush), and :class:`MemorySink` (in-process capture
for tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, List, Optional

import numpy as np

from repro.obs.registry import MetricsRegistry, render_prom_text


def _jsonify(value):
    """JSON fallback for numpy scalars/arrays in event payloads."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.bool_):
        return bool(value)
    return str(value)


class Sink:
    """Interface; every hook is optional for subclasses."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        """Receive one structured run event."""

    def write_metrics(self, registry: MetricsRegistry) -> None:
        """Receive the registry state (flush/shutdown)."""

    def flush(self) -> None:
        """Push buffered output to its destination."""

    def close(self) -> None:
        """Release resources; the sink will not be used afterwards."""


class MemorySink(Sink):
    """Captures events and metric snapshots in-process (test sink)."""

    def __init__(self) -> None:
        self.events: List[dict] = []
        self.metric_snapshots: List[dict] = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def write_metrics(self, registry: MetricsRegistry) -> None:
        self.metric_snapshots.append(registry.snapshot())

    def close(self) -> None:
        self.closed = True

    def events_of(self, kind: str) -> List[dict]:
        """Captured events with ``event == kind`` (helper for asserts)."""
        return [e for e in self.events if e.get("event") == kind]


class JsonlSink(Sink):
    """Structured run events as one JSON object per line."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    def _ensure_open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        return self._handle

    def emit(self, event: dict) -> None:
        handle = self._ensure_open()
        handle.write(json.dumps(event, default=_jsonify) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class PromTextSink(Sink):
    """Prometheus text exposition written to a file on flush.

    The file is rewritten atomically (write to ``<path>.tmp`` + rename)
    so a scraper never observes a half-written exposition.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def write_metrics(self, registry: MetricsRegistry) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(render_prom_text(registry), encoding="utf-8")
        tmp.replace(self.path)
