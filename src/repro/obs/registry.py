"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the in-process store every instrumented call site writes
into when telemetry is enabled (see :mod:`repro.obs.telemetry` for the
module-level no-op fast path). Three instrument kinds are provided:

- :class:`Counter` — monotonically increasing total (``_total`` names);
- :class:`Gauge` — a value that can go up and down (fills, medians,
  bridged :class:`~repro.runtime.PoolHealth` counters);
- :class:`Histogram` — fixed-bucket distribution with exact count / sum /
  min / max and interpolated p50/p95/p99 summaries. Buckets are upper
  bounds; observations above the last bound land in the implicit
  ``+Inf`` bucket.

Instruments are identified by ``(name, labels)``; the same name must keep
the same kind (Prometheus semantics). :func:`render_prom_text` writes the
whole registry in the Prometheus text exposition format v0.0.4.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError

#: Default histogram bucket upper bounds. Deliberately wide (100 µs to
#: 100 s if read as seconds) so one grid serves latencies, losses, and
#: gradient norms alike; exact min/max/mean are tracked per histogram.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0,
)

#: Sub-millisecond ladder for the spill-restore and stacked-forward
#: histograms: the PR 7 fast paths land around 0.85 ms, which the
#: default grid lumps into one bucket (0.5–1 ms). 10 µs–1 ms is covered
#: at ~2× steps here; everything slower than 5 s is overflow by design.
FAST_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00015, 0.00025, 0.0004,
    0.0006, 0.0008, 0.001, 0.0015, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 1.0, 5.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]

#: Prometheus metric-name grammar (colons allowed for recording rules).
_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Label *value* used when a metric hits its per-name series cap: all
#: further label sets collapse into one overflow series instead of
#: growing without bound (e.g. a tenant label fed raw session ids).
OVERFLOW_LABEL_VALUE = "_overflow"

#: Default cap on distinct label sets per metric name.
MAX_SERIES_PER_METRIC = 256


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary string into a legal Prometheus metric name.

    Illegal characters become ``_`` and a leading digit is prefixed, so
    dynamically built names (``f"repro_{op}"``) can never produce an
    exposition file Prometheus refuses to scrape.
    """
    if _VALID_NAME.match(name):
        return name
    cleaned = _INVALID_NAME_CHARS.sub("_", str(name))
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _freeze_labels(labels: Optional[Mapping[str, object]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing metric."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelPairs, lock: threading.RLock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelPairs, lock: threading.RLock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries."""

    __slots__ = (
        "name", "labels", "buckets", "bucket_counts",
        "count", "sum", "min", "max", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelPairs,
        lock: threading.RLock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation inside buckets.

        The overflow bucket is represented by the exact observed maximum;
        an empty histogram returns ``nan``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return math.nan
            target = q * self.count
            cumulative = 0
            lower = self.min
            for i, bound in enumerate(self.buckets):
                in_bucket = self.bucket_counts[i]
                if cumulative + in_bucket >= target and in_bucket > 0:
                    fraction = (target - cumulative) / in_bucket
                    low = max(lower, self.min)
                    high = min(bound, self.max)
                    if high < low:
                        return low
                    return low + fraction * (high - low)
                cumulative += in_bucket
                lower = bound
            return self.max

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0}
            return {
                "count": self.count,
                "sum": self.sum,
                "mean": self.sum / self.count,
                "min": self.min,
                "max": self.max,
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            }


class MetricsRegistry:
    """Get-or-create store of instruments, safe under concurrent writers.

    All instruments created by one registry share its re-entrant lock, so
    snapshotting is consistent with respect to in-flight updates from the
    thread executor backend.
    """

    def __init__(
        self, max_series_per_metric: int = MAX_SERIES_PER_METRIC
    ) -> None:
        if max_series_per_metric < 1:
            raise ConfigurationError(
                f"max_series_per_metric must be >= 1, "
                f"got {max_series_per_metric}"
            )
        self._lock = threading.RLock()
        self._instruments: Dict[Tuple[str, LabelPairs], object] = {}
        self._kinds: Dict[str, str] = {}
        self._series_counts: Dict[str, int] = {}
        self.max_series_per_metric = int(max_series_per_metric)
        #: Per-name count of label sets that collapsed into the
        #: overflow series (cardinality pressure is itself observable).
        self.overflow_series: Dict[str, int] = {}

    def _get_or_create(self, kind: str, name: str, labels, factory):
        name = sanitize_metric_name(name)
        key = (name, _freeze_labels(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, cannot reuse as {kind}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                if (
                    key[1]
                    and self._series_counts.get(name, 0)
                    >= self.max_series_per_metric
                ):
                    # Bounded cardinality: past the cap every new label
                    # set maps onto one shared overflow series.
                    self.overflow_series[name] = (
                        self.overflow_series.get(name, 0) + 1
                    )
                    key = (
                        name,
                        tuple(
                            (k, OVERFLOW_LABEL_VALUE) for k, _ in key[1]
                        ),
                    )
                    instrument = self._instruments.get(key)
                    if instrument is not None:
                        return instrument
                instrument = factory(name, key[1], self._lock)
                self._instruments[key] = instrument
                self._kinds[name] = kind
                self._series_counts[name] = (
                    self._series_counts.get(name, 0) + 1
                )
            return instrument

    def counter(self, name: str, labels: Optional[Mapping] = None) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, labels: Optional[Mapping] = None) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping] = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels,
            lambda n, l, lock: Histogram(n, l, lock, buckets=buckets),
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, List[dict]]:
        """Plain-dict dump of every instrument (for sinks and tests)."""
        with self._lock:
            out: Dict[str, List[dict]] = {
                "counters": [], "gauges": [], "histograms": [],
            }
            for (name, labels), instrument in self._instruments.items():
                labels_dict = dict(labels)
                if isinstance(instrument, Counter):
                    out["counters"].append(
                        {"name": name, "labels": labels_dict,
                         "value": instrument.value}
                    )
                elif isinstance(instrument, Gauge):
                    out["gauges"].append(
                        {"name": name, "labels": labels_dict,
                         "value": instrument.value}
                    )
                else:
                    row = {"name": name, "labels": labels_dict}
                    row.update(instrument.summary())
                    # Raw bucket data rides along so snapshots from
                    # several worker processes can be merged exactly
                    # (counts are additive when the grids match).
                    row["buckets"] = list(instrument.buckets)
                    row["bucket_counts"] = list(instrument.bucket_counts)
                    out["histograms"].append(row)
            return out

    def _instruments_by_name(self) -> Dict[str, List[object]]:
        grouped: Dict[str, List[object]] = {}
        for (name, _), instrument in self._instruments.items():
            grouped.setdefault(name, []).append(instrument)
        return grouped


def _label_key(labels: Mapping[str, object]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _quantile_from_buckets(
    bounds: List[float],
    counts: List[int],
    total: int,
    min_value: float,
    max_value: float,
    q: float,
) -> float:
    """Linear-interpolation quantile over merged bucket counts.

    Mirrors :meth:`Histogram.quantile` but works on plain lists, so
    merged cross-process snapshots get real percentiles instead of a
    max-of-maxes.
    """
    if total == 0:
        return math.nan
    target = q * total
    cumulative = 0
    lower = min_value
    for i, bound in enumerate(bounds):
        in_bucket = counts[i]
        if cumulative + in_bucket >= target and in_bucket > 0:
            fraction = (target - cumulative) / in_bucket
            low = max(lower, min_value)
            high = min(bound, max_value)
            if high < low:
                return low
            return low + fraction * (high - low)
        cumulative += in_bucket
        lower = bound
    return max_value


def merge_snapshots(snapshots: Iterable[Dict[str, List[dict]]]) -> Dict[str, List[dict]]:
    """Merge :meth:`MetricsRegistry.snapshot` dumps from many processes.

    Counters and gauges sum across processes (gauges in this codebase
    are additive occupancy/fill values — session counts, queue depths —
    so a sum is the fleet-wide reading). Histograms with identical
    bucket grids merge exactly: bucket counts, count and sum add,
    min/max combine, and quantiles are recomputed from the merged
    buckets. Mismatched grids (a worker on an older bucket set) still
    merge count/sum/min/max but drop per-bucket data for that series.
    """
    counters: Dict[Tuple[str, LabelPairs], dict] = {}
    gauges: Dict[Tuple[str, LabelPairs], dict] = {}
    histograms: Dict[Tuple[str, LabelPairs], dict] = {}

    for snapshot in snapshots:
        if not snapshot:
            continue
        for row in snapshot.get("counters", []):
            key = (row["name"], _label_key(row.get("labels", {})))
            slot = counters.get(key)
            if slot is None:
                counters[key] = dict(row)
            else:
                slot["value"] += row["value"]
        for row in snapshot.get("gauges", []):
            key = (row["name"], _label_key(row.get("labels", {})))
            slot = gauges.get(key)
            if slot is None:
                gauges[key] = dict(row)
            else:
                slot["value"] += row["value"]
        for row in snapshot.get("histograms", []):
            key = (row["name"], _label_key(row.get("labels", {})))
            slot = histograms.get(key)
            if slot is None:
                histograms[key] = dict(row)
                continue
            slot["count"] = slot.get("count", 0) + row.get("count", 0)
            slot["sum"] = slot.get("sum", 0.0) + row.get("sum", 0.0)
            if "min" in row:
                slot["min"] = min(slot.get("min", math.inf), row["min"])
            if "max" in row:
                slot["max"] = max(slot.get("max", -math.inf), row["max"])
            same_grid = (
                slot.get("buckets") is not None
                and slot.get("buckets") == row.get("buckets")
            )
            if same_grid:
                slot["bucket_counts"] = [
                    a + b for a, b in zip(
                        slot["bucket_counts"], row["bucket_counts"]
                    )
                ]
            else:
                slot.pop("buckets", None)
                slot.pop("bucket_counts", None)

    for slot in histograms.values():
        count = slot.get("count", 0)
        if count > 0:
            slot["mean"] = slot.get("sum", 0.0) / count
            if slot.get("buckets") is not None:
                for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                    slot[label] = _quantile_from_buckets(
                        slot["buckets"], slot["bucket_counts"], count,
                        slot.get("min", 0.0), slot.get("max", 0.0), q,
                    )

    def _ordered(rows: Dict[Tuple[str, LabelPairs], dict]) -> List[dict]:
        return [rows[key] for key in sorted(rows)]

    return {
        "counters": _ordered(counters),
        "gauges": _ordered(gauges),
        "histograms": _ordered(histograms),
    }


def render_prom_snapshot(snapshot: Dict[str, List[dict]]) -> str:
    """Prometheus text exposition of a (possibly merged) snapshot dict.

    The snapshot-based twin of :func:`render_prom_text`: the supervisor
    merges per-shard worker snapshots with :func:`merge_snapshots` and
    renders one fleet-wide ``/metrics`` body from the result without
    ever holding a live registry for remote processes.
    """
    lines: List[str] = []
    sections = (
        ("counter", snapshot.get("counters", [])),
        ("gauge", snapshot.get("gauges", [])),
        ("histogram", snapshot.get("histograms", [])),
    )
    for kind, rows in sections:
        seen_types: set = set()
        for row in sorted(
            rows, key=lambda r: (r["name"], _label_key(r.get("labels", {})))
        ):
            name = row["name"]
            labels = _label_key(row.get("labels", {}))
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(row['value'])}"
                )
                continue
            count = int(row.get("count", 0))
            bounds = row.get("buckets")
            bucket_counts = row.get("bucket_counts")
            if bounds is not None and bucket_counts is not None:
                cumulative = 0
                for bound, in_bucket in zip(bounds, bucket_counts):
                    cumulative += in_bucket
                    le = _format_labels(
                        labels, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                inf = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {count}")
            plain = _format_labels(labels)
            lines.append(
                f"{name}_sum{plain} {_format_value(row.get('sum', 0.0))}"
            )
            lines.append(f"{name}_count{plain} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: LabelPairs, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prom_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    with registry._lock:
        grouped = registry._instruments_by_name()
        for name in sorted(grouped):
            kind = registry._kinds[name]
            lines.append(f"# TYPE {name} {kind}")
            for instrument in grouped[name]:
                if kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{_format_labels(instrument.labels)} "
                        f"{_format_value(instrument.value)}"
                    )
                    continue
                cumulative = 0
                for bound, in_bucket in zip(
                    instrument.buckets, instrument.bucket_counts
                ):
                    cumulative += in_bucket
                    le = _format_labels(
                        instrument.labels, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                inf = _format_labels(instrument.labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {instrument.count}")
                plain = _format_labels(instrument.labels)
                lines.append(f"{name}_sum{plain} {_format_value(instrument.sum)}")
                lines.append(f"{name}_count{plain} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")
