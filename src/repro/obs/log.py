"""Stdlib-logging wrapper for library code paths.

Library modules obtain namespaced loggers via :func:`get_logger` instead
of printing; nothing is emitted below WARNING until an application opts
in with :func:`configure_logging` (the CLI does, mapping ``-v``/``-q``
and ``--log-level``). Operational output goes to *stderr* so final
result tables on stdout stay machine-readable.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro.exceptions import ConfigurationError

ROOT_LOGGER = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_handler: Optional[logging.Handler] = None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Namespaced logger under the shared ``repro`` root."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def resolve_level(
    level: Optional[str] = None, verbosity: int = 0, quiet: bool = False
) -> int:
    """Map CLI-style flags to a stdlib level.

    An explicit ``level`` name wins; otherwise ``quiet`` selects ERROR
    and ``verbosity`` counts (``-v`` = INFO, ``-vv`` = DEBUG) raise the
    default of WARNING.
    """
    if level is not None:
        try:
            return LEVELS[str(level).lower()]
        except KeyError:
            raise ConfigurationError(
                f"log level must be one of {sorted(LEVELS)}, got {level!r}"
            ) from None
    if quiet:
        return logging.ERROR
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(
    level: Optional[str] = None,
    verbosity: int = 0,
    quiet: bool = False,
    stream=None,
) -> logging.Logger:
    """Install (or replace) the library's single stderr handler.

    Idempotent: repeated calls swap the previous handler rather than
    stacking duplicates. Returns the configured root library logger.
    """
    global _handler
    resolved = resolve_level(level, verbosity, quiet)
    logger = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        logger.removeHandler(_handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False
    _handler = handler
    return logger
