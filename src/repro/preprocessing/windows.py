"""Sliding-window utilities used by the MDP state and the SWE baseline."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.preprocessing.embedding import validate_series


def sliding_windows(series: np.ndarray, window: int, step: int = 1) -> np.ndarray:
    """Return all length-``window`` views of ``series`` as rows.

    Output shape is ``((n - window) // step + 1, window)``.
    """
    if window < 1 or step < 1:
        raise DataValidationError("window and step must be >= 1")
    array = validate_series(series, min_length=window)
    n_windows = (array.size - window) // step + 1
    indices = np.arange(window)[None, :] + step * np.arange(n_windows)[:, None]
    return array[indices]


def shift_window(window: np.ndarray, new_value: float) -> np.ndarray:
    """Drop the oldest value and append ``new_value`` (paper Alg. 1 line 5)."""
    array = np.asarray(window, dtype=np.float64)
    if array.ndim != 1 or array.size < 1:
        raise DataValidationError(f"window must be a non-empty 1-D array")
    result = np.empty_like(array)
    result[:-1] = array[1:]
    result[-1] = new_value
    return result


def difference(series: np.ndarray, order: int = 1) -> np.ndarray:
    """Apply ``order`` rounds of first differencing (ARIMA's 'I' step)."""
    if order < 0:
        raise DataValidationError(f"difference order must be >= 0, got {order}")
    array = validate_series(series, min_length=order + 1)
    for _ in range(order):
        array = np.diff(array)
    return array


def undifference_last(
    history_tail: np.ndarray, diffed_prediction: float, order: int = 1
) -> float:
    """Invert differencing for a one-step-ahead prediction.

    ``history_tail`` must hold at least the last ``order`` original values.
    For order 1 this is ``x̂_{t+1} = x_t + Δx̂_{t+1}``; for order 2 the
    second difference is integrated twice.
    """
    if order == 0:
        return float(diffed_prediction)
    tail = np.asarray(history_tail, dtype=np.float64)
    if tail.size < order:
        raise DataValidationError(
            f"need at least {order} trailing values to undifference"
        )
    # Reconstruct by cumulative integration of the differenced tail:
    # Δ^k x̂_{t+1} = Δ^k x_t + Δ^{k+1} x̂_{t+1}, applied from k=order-1 to 0.
    value = float(diffed_prediction)
    for level in reversed(_difference_stack(tail, order)):
        value = level + value
    return value


def _difference_stack(tail: np.ndarray, order: int) -> list:
    """Last value of each successive difference of ``tail`` (orders 0..order-1)."""
    stack = []
    current = np.asarray(tail, dtype=np.float64)
    for _ in range(order):
        stack.append(float(current[-1]))
        current = np.diff(current)
    return stack
