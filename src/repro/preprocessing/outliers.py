"""Outlier handling for sensor-grade series: the Hampel filter.

Sensor data (Table I's NH4, humidity, wind series) carries occasional
spikes that distort embedding-based models. The Hampel filter flags
points deviating from the rolling median by more than ``n_sigmas``
robust standard deviations (MAD-scaled) and replaces them with the
median — the standard pre-cleaning step for such series.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.preprocessing.embedding import validate_series

#: MAD → standard-deviation consistency constant for Gaussian data.
_MAD_SCALE = 1.4826


def hampel_filter(
    series: np.ndarray, window: int = 7, n_sigmas: float = 3.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a centred Hampel filter.

    Parameters
    ----------
    series:
        1-D input.
    window:
        Half-window size: each point is compared against the median of
        the ``2·window + 1`` values centred on it (edges use truncated
        windows).
    n_sigmas:
        Rejection threshold in robust standard deviations.

    Returns
    -------
    (cleaned, is_outlier):
        The filtered series and a boolean mask of replaced positions.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if n_sigmas <= 0:
        raise ConfigurationError(f"n_sigmas must be positive, got {n_sigmas}")
    array = validate_series(series, min_length=3)
    n = array.size
    cleaned = array.copy()
    mask = np.zeros(n, dtype=bool)
    for i in range(n):
        lo = max(0, i - window)
        hi = min(n, i + window + 1)
        neighbourhood = array[lo:hi]
        median = float(np.median(neighbourhood))
        mad = float(np.median(np.abs(neighbourhood - median)))
        sigma = _MAD_SCALE * mad
        if sigma < 1e-12:
            continue
        if abs(array[i] - median) > n_sigmas * sigma:
            cleaned[i] = median
            mask[i] = True
    return cleaned, mask


def outlier_fraction(series: np.ndarray, window: int = 7, n_sigmas: float = 3.0) -> float:
    """Fraction of points the Hampel filter would replace."""
    _, mask = hampel_filter(series, window=window, n_sigmas=n_sigmas)
    return float(mask.mean())
