"""Series preprocessing: embedding, scaling, splits, sliding windows."""

from repro.preprocessing.embedding import embed, last_window, validate_series
from repro.preprocessing.outliers import hampel_filter, outlier_fraction
from repro.preprocessing.scaling import MinMaxScaler, StandardScaler
from repro.preprocessing.splits import rolling_origin_splits, train_test_split
from repro.preprocessing.windows import (
    difference,
    shift_window,
    sliding_windows,
    undifference_last,
)

__all__ = [
    "MinMaxScaler",
    "StandardScaler",
    "difference",
    "embed",
    "hampel_filter",
    "last_window",
    "outlier_fraction",
    "rolling_origin_splits",
    "shift_window",
    "sliding_windows",
    "train_test_split",
    "undifference_last",
    "validate_series",
]
