"""Time-delay embedding of univariate series into supervised pairs.

The paper applies "time series embedding to dimension k" (k = 5) before
feeding regression-style base models: each target value ``x_t`` is paired
with the ``k`` preceding values ``(x_{t-k}, ..., x_{t-1})``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataValidationError


def validate_series(series: np.ndarray, min_length: int = 2) -> np.ndarray:
    """Validate and coerce a 1-D float series.

    Raises :class:`DataValidationError` for non-1-D input, NaN/inf values,
    or series shorter than ``min_length``.
    """
    array = np.asarray(series, dtype=np.float64)
    if array.ndim != 1:
        raise DataValidationError(
            f"expected a 1-D series, got shape {array.shape}"
        )
    if array.size < min_length:
        raise DataValidationError(
            f"series of length {array.size} is shorter than required "
            f"minimum {min_length}"
        )
    if not np.all(np.isfinite(array)):
        raise DataValidationError("series contains NaN or infinite values")
    return array


def embed(series: np.ndarray, dimension: int) -> Tuple[np.ndarray, np.ndarray]:
    """Time-delay embed ``series`` into ``(X, y)`` supervised pairs.

    Parameters
    ----------
    series:
        1-D array of length ``n``.
    dimension:
        Embedding dimension ``k`` (number of lagged inputs).

    Returns
    -------
    X : ndarray of shape ``(n - k, k)``
        Row ``i`` holds ``series[i : i + k]`` (oldest lag first).
    y : ndarray of shape ``(n - k,)``
        ``y[i] = series[i + k]``.

    Examples
    --------
    >>> X, y = embed(np.arange(6.0), 2)
    >>> X[0]
    array([0., 1.])
    >>> float(y[0])
    2.0
    """
    if dimension < 1:
        raise DataValidationError(f"embedding dimension must be >= 1, got {dimension}")
    array = validate_series(series, min_length=dimension + 1)
    n = array.size - dimension
    strides = (array.strides[0], array.strides[0])
    X = np.lib.stride_tricks.as_strided(array, shape=(n, dimension), strides=strides)
    return X.copy(), array[dimension:].copy()


def last_window(series: np.ndarray, dimension: int) -> np.ndarray:
    """Return the final ``dimension`` values as a single embedding row."""
    array = validate_series(series, min_length=dimension)
    return array[-dimension:].copy()
