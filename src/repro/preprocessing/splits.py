"""Chronological train/test splitting (paper: 75% train, 25% test)."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import DataValidationError
from repro.preprocessing.embedding import validate_series


def train_test_split(
    series: np.ndarray, train_fraction: float = 0.75
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a series chronologically; never shuffles.

    The paper evaluates with a 75/25 chronological split; shuffling would
    leak future information into training.
    """
    if not 0.0 < train_fraction < 1.0:
        raise DataValidationError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    array = validate_series(series, min_length=4)
    cut = int(round(array.size * train_fraction))
    cut = min(max(cut, 1), array.size - 1)
    return array[:cut].copy(), array[cut:].copy()


def rolling_origin_splits(
    series: np.ndarray,
    initial_fraction: float = 0.5,
    horizon: int = 1,
    step: int = 1,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield rolling-origin evaluation folds ``(history, future)``.

    Standard time-series cross-validation: training history grows by
    ``step`` each fold, the test block is the next ``horizon`` values.
    """
    if horizon < 1 or step < 1:
        raise DataValidationError("horizon and step must be >= 1")
    array = validate_series(series, min_length=4)
    start = int(round(array.size * initial_fraction))
    start = min(max(start, 1), array.size - horizon)
    for cut in range(start, array.size - horizon + 1, step):
        yield array[:cut].copy(), array[cut : cut + horizon].copy()
