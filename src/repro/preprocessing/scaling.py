"""Feature scalers with fit/transform/inverse_transform semantics."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError, NotFittedError


class StandardScaler:
    """Standardise to zero mean and unit variance (per feature column).

    Works on 1-D series and 2-D design matrices; constant features get
    a unit scale so transform is a no-op shift for them.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        array = np.asarray(data, dtype=np.float64)
        if array.size == 0:
            raise DataValidationError("cannot fit scaler on empty data")
        self.mean_ = array.mean(axis=0)
        scale = array.std(axis=0)
        self.scale_ = np.where(scale > 1e-12, scale, 1.0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError(type(self).__name__)
        return (np.asarray(data, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError(type(self).__name__)
        return np.asarray(data, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into ``[low, high]`` (default unit interval)."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)):
        low, high = feature_range
        if low >= high:
            raise DataValidationError(
                f"feature_range must satisfy low < high, got {feature_range}"
            )
        self.low, self.high = float(low), float(high)
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        array = np.asarray(data, dtype=np.float64)
        if array.size == 0:
            raise DataValidationError("cannot fit scaler on empty data")
        self.data_min_ = array.min(axis=0)
        self.data_max_ = array.max(axis=0)
        return self

    def _span(self) -> np.ndarray:
        span = self.data_max_ - self.data_min_
        return np.where(span > 1e-12, span, 1.0)

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.data_min_ is None:
            raise NotFittedError(type(self).__name__)
        unit = (np.asarray(data, dtype=np.float64) - self.data_min_) / self._span()
        return unit * (self.high - self.low) + self.low

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.data_min_ is None:
            raise NotFittedError(type(self).__name__)
        unit = (np.asarray(data, dtype=np.float64) - self.low) / (self.high - self.low)
        return unit * self._span() + self.data_min_
