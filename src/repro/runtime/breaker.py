"""Per-member circuit breaker (CLOSED → OPEN → HALF_OPEN → CLOSED).

The breaker protects the ensemble from a member that has started failing
systematically: after ``failure_threshold`` *consecutive* failures the
member is quarantined (OPEN) and its calls are denied without being
attempted. After ``cooldown_steps`` denied calls the breaker moves to
HALF_OPEN and lets exactly one probe call through; a successful probe
closes the breaker (full recovery), a failed probe re-opens it for
another cooldown.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class BreakerState(enum.Enum):
    """Lifecycle states of a :class:`CircuitBreaker`."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with step-based cooldown.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip CLOSED → OPEN.
    cooldown_steps:
        Denied calls absorbed while OPEN before a HALF_OPEN probe.
    on_transition:
        Optional callback ``(old_state, new_state)`` invoked on every
        state change (used by the health registry).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_steps: int = 10,
        on_transition: Optional[Callable[[BreakerState, BreakerState], None]] = None,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_steps = cooldown_steps
        self.on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._cooldown_counter = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _transition(self, new_state: BreakerState) -> None:
        old = self._state
        if old is new_state:
            return
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(old, new_state)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the next call may be attempted.

        While OPEN, each denied call advances the cooldown; once
        ``cooldown_steps`` calls have been absorbed the breaker moves to
        HALF_OPEN and the *next* call is allowed as a probe.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            return True
        self._cooldown_counter += 1
        if self._cooldown_counter >= self.cooldown_steps:
            self._cooldown_counter = 0
            self._transition(BreakerState.HALF_OPEN)
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        if self._state is BreakerState.HALF_OPEN:
            # Failed probe: straight back to quarantine.
            self._cooldown_counter = 0
            self._transition(BreakerState.OPEN)
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._cooldown_counter = 0
            self._transition(BreakerState.OPEN)
