"""Configuration for the fault-tolerant pool runtime."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError


@dataclass
class RuntimeGuardConfig:
    """Per-member guard and circuit-breaker settings.

    Attributes
    ----------
    timeout:
        Per-prediction wall-clock budget in seconds; ``None`` disables
        timeout detection entirely.
    timeout_mode:
        ``"soft"`` (default) measures elapsed time after the call returns
        and records a timeout failure when the budget was exceeded — the
        call itself is never interrupted, so a slow member costs at most
        ``failure_threshold`` slow calls before its breaker opens.
        ``"thread"`` runs the call in a worker thread and abandons it when
        the budget expires (the thread keeps running to completion in the
        background; use only for members that can genuinely hang).
    max_retries:
        Additional attempts after the first failed call (exceptions and
        non-finite output are retried; a soft timeout is not, since the
        value already arrived).
    backoff:
        Base sleep in seconds before retry ``i`` (doubles each attempt:
        ``backoff * 2**i``). Defaults to 0 so tests stay instant.
    failure_threshold:
        Consecutive failed calls before the member's breaker opens
        (CLOSED → OPEN).
    cooldown_steps:
        Denied calls an OPEN breaker absorbs before allowing one
        HALF_OPEN probe. A successful probe closes the breaker; a failed
        probe re-opens it for another cooldown.
    fallback:
        Value used for a quarantined/failed member's slot:
        ``"persistence"`` repeats the last observed true value,
        ``"last_healthy"`` repeats the member's own last healthy
        prediction (falling back to persistence before any success).
    """

    timeout: Optional[float] = None
    timeout_mode: str = "soft"
    max_retries: int = 1
    backoff: float = 0.0
    failure_threshold: int = 3
    cooldown_steps: int = 10
    fallback: str = "persistence"

    def validate(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive or None, got {self.timeout}"
            )
        if self.timeout_mode not in ("soft", "thread"):
            raise ConfigurationError(
                f"timeout_mode must be 'soft' or 'thread', got {self.timeout_mode!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 0:
            raise ConfigurationError(f"backoff must be >= 0, got {self.backoff}")
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_steps < 1:
            raise ConfigurationError(
                f"cooldown_steps must be >= 1, got {self.cooldown_steps}"
            )
        if self.fallback not in ("persistence", "last_healthy"):
            raise ConfigurationError(
                f"fallback must be 'persistence' or 'last_healthy', "
                f"got {self.fallback!r}"
            )
