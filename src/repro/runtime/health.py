"""Structured health accounting for a guarded pool.

:class:`PoolHealth` is the shared registry every
:class:`~repro.runtime.guards.GuardedForecaster` in a pool reports into.
It records per-member counters, a log of failure events, every
circuit-breaker state transition, and per-member wall-clock timings, and
renders the operator-facing report surfaced by ``repro.cli forecast
--guard``.

The registry is thread-safe: every mutator and reader takes an internal
re-entrant lock, so guarded members running under the thread backend of
:mod:`repro.runtime.executor` can report concurrently. The parallel pool
paths additionally keep event *ordering* deterministic by giving each
worker a private scratch registry and replaying it into the shared one in
member order via :meth:`PoolHealth.merge_from` — see
``ForecasterPool.fit``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List

from repro.runtime.breaker import BreakerState


@dataclass
class FailureEvent:
    """One recorded member failure.

    ``kind`` is one of ``"exception"``, ``"non_finite"``, ``"timeout"``,
    ``"circuit_open"`` (a denied call, not attempted) or ``"fit_error"``.
    ``step`` is the member's own monotonically increasing call counter
    (-1 for fit-time events).
    """

    member: str
    step: int
    kind: str
    detail: str


@dataclass
class TransitionEvent:
    """One circuit-breaker state change for a member."""

    member: str
    step: int
    old_state: BreakerState
    new_state: BreakerState


@dataclass
class MemberHealth:
    """Running counters for one pool member."""

    name: str
    calls: int = 0
    successes: int = 0
    failures: int = 0
    fallbacks: int = 0
    skips: int = 0
    state: BreakerState = BreakerState.CLOSED
    last_error: str = ""
    fit_seconds: float = 0.0
    predict_seconds: float = 0.0


class PoolHealth:
    """Registry of member health records plus the event logs."""

    def __init__(self) -> None:
        self._members: Dict[str, MemberHealth] = {}
        self.failures: List[FailureEvent] = []
        self.transitions: List[TransitionEvent] = []
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks cannot cross process boundaries
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def member(self, name: str) -> MemberHealth:
        """The (lazily created) health record for ``name``."""
        with self._lock:
            if name not in self._members:
                self._members[name] = MemberHealth(name=name)
            return self._members[name]

    @property
    def members(self) -> List[MemberHealth]:
        with self._lock:
            return list(self._members.values())

    def quarantined(self) -> List[str]:
        """Names of members whose breaker is currently not CLOSED."""
        with self._lock:
            return [
                m.name for m in self._members.values()
                if m.state is not BreakerState.CLOSED
            ]

    # ------------------------------------------------------------------
    def record_success(self, name: str, count: int = 1) -> None:
        with self._lock:
            record = self.member(name)
            record.calls += count
            record.successes += count

    def record_failure(self, name: str, step: int, kind: str, detail: str) -> None:
        with self._lock:
            record = self.member(name)
            if kind != "circuit_open":
                record.calls += 1
            record.failures += 1
            record.last_error = f"{kind}: {detail}"
            self.failures.append(FailureEvent(name, step, kind, detail))

    def record_fallback(self, name: str) -> None:
        with self._lock:
            self.member(name).fallbacks += 1

    def record_skip(self, name: str) -> None:
        """A call denied without being attempted (breaker OPEN)."""
        with self._lock:
            self.member(name).skips += 1

    def record_transition(
        self, name: str, step: int, old: BreakerState, new: BreakerState
    ) -> None:
        with self._lock:
            self.member(name).state = new
            self.transitions.append(TransitionEvent(name, step, old, new))

    def record_timing(self, name: str, phase: str, seconds: float) -> None:
        """Accumulate wall-clock seconds for a member's ``fit``/``predict``."""
        with self._lock:
            record = self.member(name)
            if phase == "fit":
                record.fit_seconds += seconds
            else:
                record.predict_seconds += seconds

    # ------------------------------------------------------------------
    def merge_from(self, other: "PoolHealth") -> None:
        """Replay another registry's records into this one.

        The parallel pool paths hand each worker a private scratch
        registry and merge the scratch registries back **in member
        order**, which makes the shared registry's event logs identical
        to a serial run regardless of backend or worker count. Counters
        and timings are added; breaker state follows the replayed
        transitions; ``last_error`` is taken from ``other`` when set.
        """
        with self._lock:
            for record in other.members:
                mine = self.member(record.name)
                mine.calls += record.calls
                mine.successes += record.successes
                mine.failures += record.failures
                mine.fallbacks += record.fallbacks
                mine.skips += record.skips
                mine.fit_seconds += record.fit_seconds
                mine.predict_seconds += record.predict_seconds
                if record.last_error:
                    mine.last_error = record.last_error
            self.failures.extend(other.failures)
            for event in other.transitions:
                self.transitions.append(event)
                self.member(event.member).state = event.new_state

    # ------------------------------------------------------------------
    def timings(self) -> List[dict]:
        """Per-member wall-clock telemetry (stable registration order).

        ``fit_seconds`` and ``predict_seconds`` accumulate the time spent
        inside the member's training and prediction fan-out tasks (worker
        compute only — executor scheduling and pickling overhead are
        excluded). Populated for guarded *and* unguarded pools.
        """
        with self._lock:
            return [
                {
                    "member": m.name,
                    "fit_seconds": m.fit_seconds,
                    "predict_seconds": m.predict_seconds,
                    "calls": m.calls,
                }
                for m in self._members.values()
            ]

    def summary(self) -> List[dict]:
        """One plain dict per member (stable order of registration)."""
        with self._lock:
            return [
                {
                    "member": m.name,
                    "state": m.state.value,
                    "calls": m.calls,
                    "successes": m.successes,
                    "failures": m.failures,
                    "fallbacks": m.fallbacks,
                    "skips": m.skips,
                    "last_error": m.last_error,
                }
                for m in self._members.values()
            ]

    def report(self) -> str:
        """Multi-line human-readable health report (CLI output).

        Per-member wall-clock timings (when recorded) are folded into the
        same lines as the guard counters, so operators read one coherent
        report instead of cross-referencing a separate timings table.
        """
        with self._lock:
            if not self._members:
                return "pool health: no guarded calls recorded"
            lines = ["pool health:"]
            for m in self._members.values():
                line = (
                    f"  {m.name:<24} {m.state.value:<9} "
                    f"calls={m.calls} failures={m.failures} "
                    f"fallbacks={m.fallbacks} skips={m.skips}"
                )
                if m.fit_seconds or m.predict_seconds:
                    line += (
                        f" fit={m.fit_seconds:.3f}s "
                        f"predict={m.predict_seconds:.3f}s"
                    )
                if m.last_error:
                    line += f"  last_error={m.last_error}"
                lines.append(line)
            n_quarantined = len(self.quarantined())
            lines.append(
                f"  ({len(self._members)} members, {n_quarantined} quarantined, "
                f"{len(self.failures)} failure events, "
                f"{len(self.transitions)} breaker transitions)"
            )
            return "\n".join(lines)

    def publish_metrics(self, registry) -> None:
        """Mirror this registry's state into a metrics registry.

        ``registry`` is duck-typed (any object with ``gauge(name,
        labels)`` returning something with ``set``) so this module never
        imports :mod:`repro.obs`; the pool calls it after each fan-out
        when telemetry is enabled, bridging the accumulated
        :meth:`timings` and guard counters into ``repro_pool_*`` gauges
        instead of duplicating the bookkeeping.
        """
        with self._lock:
            for m in self._members.values():
                labels = {"member": m.name}
                registry.gauge(
                    "repro_pool_member_fit_seconds", labels
                ).set(m.fit_seconds)
                registry.gauge(
                    "repro_pool_member_predict_seconds", labels
                ).set(m.predict_seconds)
                registry.gauge("repro_pool_member_calls", labels).set(m.calls)
                registry.gauge(
                    "repro_pool_member_failures", labels
                ).set(m.failures)
                registry.gauge(
                    "repro_pool_member_fallbacks", labels
                ).set(m.fallbacks)
            registry.gauge("repro_pool_quarantined_members").set(
                len(self.quarantined())
            )
            registry.gauge("repro_pool_failure_events").set(len(self.failures))
            registry.gauge("repro_pool_breaker_transitions").set(
                len(self.transitions)
            )
