"""Structured health accounting for a guarded pool.

:class:`PoolHealth` is the shared registry every
:class:`~repro.runtime.guards.GuardedForecaster` in a pool reports into.
It records per-member counters, a log of failure events, and every
circuit-breaker state transition, and renders the operator-facing report
surfaced by ``repro.cli forecast --guard``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.runtime.breaker import BreakerState


@dataclass
class FailureEvent:
    """One recorded member failure.

    ``kind`` is one of ``"exception"``, ``"non_finite"``, ``"timeout"``,
    ``"circuit_open"`` (a denied call, not attempted) or ``"fit_error"``.
    ``step`` is the member's own monotonically increasing call counter
    (-1 for fit-time events).
    """

    member: str
    step: int
    kind: str
    detail: str


@dataclass
class TransitionEvent:
    """One circuit-breaker state change for a member."""

    member: str
    step: int
    old_state: BreakerState
    new_state: BreakerState


@dataclass
class MemberHealth:
    """Running counters for one pool member."""

    name: str
    calls: int = 0
    successes: int = 0
    failures: int = 0
    fallbacks: int = 0
    skips: int = 0
    state: BreakerState = BreakerState.CLOSED
    last_error: str = ""


class PoolHealth:
    """Registry of member health records plus the event logs."""

    def __init__(self) -> None:
        self._members: Dict[str, MemberHealth] = {}
        self.failures: List[FailureEvent] = []
        self.transitions: List[TransitionEvent] = []

    # ------------------------------------------------------------------
    def member(self, name: str) -> MemberHealth:
        """The (lazily created) health record for ``name``."""
        if name not in self._members:
            self._members[name] = MemberHealth(name=name)
        return self._members[name]

    @property
    def members(self) -> List[MemberHealth]:
        return list(self._members.values())

    def quarantined(self) -> List[str]:
        """Names of members whose breaker is currently not CLOSED."""
        return [
            m.name for m in self._members.values()
            if m.state is not BreakerState.CLOSED
        ]

    # ------------------------------------------------------------------
    def record_success(self, name: str, count: int = 1) -> None:
        record = self.member(name)
        record.calls += count
        record.successes += count

    def record_failure(self, name: str, step: int, kind: str, detail: str) -> None:
        record = self.member(name)
        if kind != "circuit_open":
            record.calls += 1
        record.failures += 1
        record.last_error = f"{kind}: {detail}"
        self.failures.append(FailureEvent(name, step, kind, detail))

    def record_fallback(self, name: str) -> None:
        self.member(name).fallbacks += 1

    def record_skip(self, name: str) -> None:
        """A call denied without being attempted (breaker OPEN)."""
        self.member(name).skips += 1

    def record_transition(
        self, name: str, step: int, old: BreakerState, new: BreakerState
    ) -> None:
        self.member(name).state = new
        self.transitions.append(TransitionEvent(name, step, old, new))

    # ------------------------------------------------------------------
    def summary(self) -> List[dict]:
        """One plain dict per member (stable order of registration)."""
        return [
            {
                "member": m.name,
                "state": m.state.value,
                "calls": m.calls,
                "successes": m.successes,
                "failures": m.failures,
                "fallbacks": m.fallbacks,
                "skips": m.skips,
                "last_error": m.last_error,
            }
            for m in self._members.values()
        ]

    def report(self) -> str:
        """Multi-line human-readable health report (CLI output)."""
        if not self._members:
            return "pool health: no guarded calls recorded"
        lines = ["pool health:"]
        for m in self._members.values():
            line = (
                f"  {m.name:<24} {m.state.value:<9} "
                f"calls={m.calls} failures={m.failures} "
                f"fallbacks={m.fallbacks} skips={m.skips}"
            )
            if m.last_error:
                line += f"  last_error={m.last_error}"
            lines.append(line)
        n_quarantined = len(self.quarantined())
        lines.append(
            f"  ({len(self._members)} members, {n_quarantined} quarantined, "
            f"{len(self.failures)} failure events, "
            f"{len(self.transitions)} breaker transitions)"
        )
        return "\n".join(lines)
