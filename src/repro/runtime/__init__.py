"""Fault-tolerant pool runtime (beyond the paper).

The paper's online phase assumes every base forecaster answers every
step; this subsystem makes the ensemble survive individual member
degradation instead:

- :class:`GuardedForecaster` — per-call timeout, bounded retry with
  backoff, and NaN/Inf output rejection around any pool member;
- :class:`CircuitBreaker` — per-member CLOSED → OPEN → HALF_OPEN
  quarantine on consecutive failures, with step-based cooldown;
- :class:`PoolHealth` — the shared registry of failure events, breaker
  transitions, and per-member counters, exposed via
  :meth:`repro.models.ForecasterPool.health`;
- :func:`renormalise_healthy` — simplex renormalisation of a policy's
  weight vector over the currently healthy members.

See ``docs/robustness.md`` for the fault model and guarantees.
"""

from repro.runtime.breaker import BreakerState, CircuitBreaker
from repro.runtime.config import RuntimeGuardConfig
from repro.runtime.guards import GuardedForecaster, renormalise_healthy
from repro.runtime.health import (
    FailureEvent,
    MemberHealth,
    PoolHealth,
    TransitionEvent,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FailureEvent",
    "GuardedForecaster",
    "MemberHealth",
    "PoolHealth",
    "RuntimeGuardConfig",
    "TransitionEvent",
    "renormalise_healthy",
]
