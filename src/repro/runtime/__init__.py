"""Fault-tolerant pool runtime (beyond the paper).

The paper's online phase assumes every base forecaster answers every
step; this subsystem makes the ensemble survive individual member
degradation instead:

- :class:`GuardedForecaster` — per-call timeout, bounded retry with
  backoff, and NaN/Inf output rejection around any pool member;
- :class:`CircuitBreaker` — per-member CLOSED → OPEN → HALF_OPEN
  quarantine on consecutive failures, with step-based cooldown;
- :class:`PoolHealth` — the shared registry of failure events, breaker
  transitions, and per-member counters, exposed via
  :meth:`repro.models.ForecasterPool.health`;
- :func:`renormalise_healthy` — simplex renormalisation of a policy's
  weight vector over the currently healthy members;
- :class:`ExecutorConfig` / :func:`run_ordered`
  (:mod:`repro.runtime.executor`) — the pluggable serial/thread/process
  execution engine behind the pool's per-member fan-outs;
- :class:`CheckpointManager` / :class:`CheckpointConfig`
  (:mod:`repro.runtime.checkpoint`) — atomic, checksummed snapshots of
  the full training/online state with corruption quarantine and
  bit-exact resume.

See ``docs/robustness.md`` for the fault model and guarantees, and
``docs/performance.md`` for executor backend selection.
"""

from repro.runtime.breaker import BreakerState, CircuitBreaker
from repro.runtime.checkpoint import (
    CheckpointConfig,
    CheckpointManager,
    LoopCheckpointer,
    Snapshot,
    TrainingCheckpointer,
)
from repro.runtime.config import RuntimeGuardConfig
from repro.runtime.deadline import Deadline, coerce_deadline
from repro.runtime.retry import RetryPolicy
from repro.runtime.executor import (
    ExecutorConfig,
    available_workers,
    coerce_executor,
    run_ordered,
)
from repro.runtime.guards import (
    GuardedForecaster,
    combine_masked,
    renormalise_healthy,
)
from repro.runtime.health import (
    FailureEvent,
    MemberHealth,
    PoolHealth,
    TransitionEvent,
)

__all__ = [
    "BreakerState",
    "CheckpointConfig",
    "CheckpointManager",
    "CircuitBreaker",
    "Deadline",
    "ExecutorConfig",
    "LoopCheckpointer",
    "Snapshot",
    "TrainingCheckpointer",
    "FailureEvent",
    "GuardedForecaster",
    "MemberHealth",
    "PoolHealth",
    "RetryPolicy",
    "RuntimeGuardConfig",
    "TransitionEvent",
    "available_workers",
    "coerce_deadline",
    "coerce_executor",
    "combine_masked",
    "renormalise_healthy",
    "run_ordered",
]
