"""Crash-safe checkpoint & exact-resume runtime.

The paper's online protocol (Alg. 1) follows a long DDPG training phase
with an open-ended rolling stream; this subsystem makes both survive
process death. A *snapshot* is a pair of files committed in order:

1. ``<kind>-<step>.npz`` — every resumable array (network parameters,
   Adam moments, the replay ring, loop windows, ...), written through
   :func:`repro.persistence.atomic_write_bytes` (temp file + fsync +
   rename);
2. ``<kind>-<step>.json`` — the manifest: format version, SHA-256 of the
   payload, the JSON-able state (RNG bit-generator states, counters),
   and a digest over the manifest itself.

The manifest is the commit point: a crash before it lands leaves an
orphan payload that restore ignores and the retention sweep deletes. On
restore, snapshots are scanned newest-first; any snapshot failing
integrity checks (torn payload, digest mismatch, unparsable manifest)
is moved to ``quarantine/`` and the scan falls back to the next valid
one — a torn snapshot can therefore never be loaded.

Resume is **bit-exact**: every source of numeric state is captured
(float64 arrays round-trip exactly through ``.npz``; RNG bit-generator
states and Python floats round-trip exactly through JSON), so a run
killed at any step and resumed from its last snapshot produces output
bit-identical to the uninterrupted run. Enforced by
``tests/integration/test_resume_determinism.py``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    CheckpointCorruptError,
    CheckpointError,
    ConfigurationError,
)
from repro.obs import OBS, get_logger
from repro.persistence import (
    PathLike,
    atomic_write_bytes,
    load_npz_bytes,
    npz_bytes,
    sha256_hex,
    write_bytes_unsynced,
)

FORMAT_VERSION = 1

_LOG = get_logger("checkpoint")

_MANIFEST_REQUIRED = (
    "format_version",
    "kind",
    "step",
    "payload",
    "payload_sha256",
    "context",
    "meta",
    "digest",
)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class CheckpointConfig:
    """Auto-checkpointing knobs surfaced as ``EADRLConfig.checkpoint``.

    Attributes
    ----------
    directory:
        Where snapshots live. One directory can hold snapshots of every
        phase (training and each online loop kind); restore matches on
        kind and context.
    every:
        Online-loop snapshot period in *steps* (CLI
        ``--checkpoint-every``; default 50 keeps the measured overhead
        under the 3% budget, see ``benchmarks/bench_checkpoint.py``).
    train_every:
        Training snapshot period in *episodes* (episode boundaries are
        the exact-resume points of :meth:`DDPGAgent.train`). The
        default of 5 amortises the per-snapshot cost (payload +
        manifest fsyncs) below the overhead budget; set 1 to never
        lose more than a single episode.
    keep:
        Retention: number of most recent snapshots kept per kind.
    resume:
        When True, training and the online loops first look for the
        newest valid snapshot of their kind/context and continue from
        it; otherwise they start fresh (existing snapshots are simply
        overwritten as the run progresses).
    """

    directory: str = "checkpoints"
    every: int = 50
    train_every: int = 5
    keep: int = 3
    resume: bool = False

    def validate(self) -> None:
        if not self.directory:
            raise ConfigurationError("checkpoint directory must be non-empty")
        if self.every < 1:
            raise ConfigurationError(
                f"checkpoint every must be >= 1, got {self.every}"
            )
        if self.train_every < 1:
            raise ConfigurationError(
                f"checkpoint train_every must be >= 1, got {self.train_every}"
            )
        if self.keep < 1:
            raise ConfigurationError(
                f"checkpoint keep must be >= 1, got {self.keep}"
            )


# ----------------------------------------------------------------------
# RNG + JSON helpers
# ----------------------------------------------------------------------
def rng_state(generator: np.random.Generator) -> Dict[str, Any]:
    """JSON-able bit-generator state of a numpy Generator."""
    return generator.bit_generator.state


def set_rng_state(generator: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a state captured by :func:`rng_state` (bit-exact)."""
    generator.bit_generator.state = state


def _json_default(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray) and value.size <= 16:
        return value.tolist()
    raise TypeError(f"checkpoint meta is not JSON-serialisable: {value!r}")


def _canonical(manifest: Dict[str, Any]) -> bytes:
    """Deterministic serialisation of a manifest minus its digest field."""
    body = {key: value for key, value in manifest.items() if key != "digest"}
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), default=_json_default
    ).encode("utf-8")


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
@dataclass
class Snapshot:
    """One verified, loaded checkpoint."""

    kind: str
    step: int
    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any]
    manifest: Dict[str, Any]
    path: Path

    @property
    def next_step(self) -> int:
        """First step/episode index the resumed run should execute."""
        return self.step + 1


class CheckpointManager:
    """Atomic, checksummed, schema-versioned snapshot store.

    Parameters
    ----------
    directory:
        Snapshot directory (created on first save).
    keep:
        Retention count per snapshot kind.
    writer:
        Byte-writer used for both payload and manifest files; defaults
        to :func:`repro.persistence.atomic_write_bytes`. The seam exists
        for the fault-injection harness
        (:class:`repro.testing.TornWriter`) which simulates crashes
        mid-write.
    durable:
        ``False`` selects the fsync-free cache-tier writer
        (:func:`repro.persistence.write_bytes_unsynced`) for both files:
        snapshots are still atomic (never torn) but may vanish on power
        loss. Only for directories that are caches of live state — the
        serving store's spill tier in non-durable mode — never for a
        system of record. Ignored when an explicit ``writer`` is given.
    """

    def __init__(
        self,
        directory: PathLike,
        keep: int = 3,
        writer: Optional[Callable[[PathLike, bytes], Any]] = None,
        durable: bool = True,
    ):
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(os.fspath(directory))
        self.keep = keep
        if writer is not None:
            self.writer = writer
        elif durable:
            self.writer = atomic_write_bytes
        else:
            self.writer = write_bytes_unsynced
        #: Non-durable cache-tier managers (the serving spill store)
        #: skip re-encoding the manifest to check its digest on load —
        #: the payload SHA-256 is still verified, and within one
        #: process nothing tears an unsynced manifest. Durable managers
        #: and custom writers keep the full check.
        self._verify_manifest_digest = durable or writer is not None
        # mkdir-once guard: save() runs per eviction on the serving
        # spill path, and the two syscalls per save added up. Reset by
        # nobody — a directory removed mid-run fails the write loudly.
        self._directory_ready = False

    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def _payload_name(self, kind: str, step: int) -> str:
        return f"{kind}-{step:010d}.npz"

    def _manifest_name(self, kind: str, step: int) -> str:
        return f"{kind}-{step:010d}.json"

    # ------------------------------------------------------------------
    def save(
        self,
        kind: str,
        step: int,
        arrays: Dict[str, np.ndarray],
        meta: Optional[Dict[str, Any]] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Commit one snapshot; returns the manifest path.

        Write order is payload-then-manifest, each atomic, so a crash at
        any instant leaves either the previous snapshot set intact or
        the new snapshot fully committed — never a readable torn state.
        """
        if "-" in kind or "/" in kind:
            raise ConfigurationError(
                f"snapshot kind must not contain '-' or '/', got {kind!r}"
            )
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")
        with OBS.span("checkpoint.save"):
            if not self._directory_ready:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._directory_ready = True
            payload = npz_bytes(arrays)
            payload_name = self._payload_name(kind, step)
            if self.writer is atomic_write_bytes:
                # The manifest write below fsyncs the directory, which
                # persists this rename too; deferring the payload's
                # directory sync drops one fsync per snapshot. Worst
                # case on power loss: a manifest without its payload,
                # which restore quarantines and falls back from.
                atomic_write_bytes(
                    self.directory / payload_name, payload,
                    sync_directory=False,
                )
            else:
                self.writer(self.directory / payload_name, payload)
            manifest: Dict[str, Any] = {
                "format_version": FORMAT_VERSION,
                "kind": kind,
                "step": int(step),
                "payload": payload_name,
                "payload_sha256": sha256_hex(payload),
                "payload_bytes": len(payload),
                "context": context if context is not None else {},
                "meta": meta if meta is not None else {},
            }
            # The digest covers the canonical (sorted, compact) body;
            # splicing it into that same serialisation writes the file
            # with a single JSON encode — snapshot meta (RNG state
            # dicts, ring indices) is big enough that a second encode
            # showed up on the per-request serving spill path.
            body = _canonical(manifest)
            digest = sha256_hex(body)
            manifest["digest"] = digest
            manifest_path = self.directory / self._manifest_name(kind, step)
            self.writer(
                manifest_path,
                b'{"digest":"' + digest.encode("ascii") + b'",' + body[1:],
            )
            self._sweep(kind)
            if OBS.enabled:
                labels = {"kind": kind}
                registry = OBS.registry
                registry.counter("repro_checkpoint_saves_total", labels).inc()
                registry.histogram(
                    "repro_checkpoint_payload_bytes", labels
                ).observe(float(len(payload)))
                OBS.emit(
                    "checkpoint_saved",
                    snapshot_kind=kind,
                    step=int(step),
                    path=str(manifest_path),
                    payload_bytes=len(payload),
                )
        return manifest_path

    # ------------------------------------------------------------------
    def manifest_paths(self, kind: Optional[str] = None) -> List[Path]:
        """Manifest files on disk, newest step first."""
        try:
            entries = os.scandir(os.fspath(self.directory))
        except OSError:
            return []
        found: List[Tuple[int, str]] = []
        with entries:
            for entry in entries:
                stem, _, ext = entry.name.rpartition(".")
                if ext != "json":
                    continue
                stem_kind, _, stem_step = stem.rpartition("-")
                if not stem_kind or not stem_step.isdigit():
                    continue
                if kind is not None and stem_kind != kind:
                    continue
                found.append((int(stem_step), entry.name))
        found.sort(key=lambda item: item[0], reverse=True)
        return [self.directory / name for _, name in found]

    def load(self, manifest_path: PathLike) -> Snapshot:
        """Load + verify one snapshot; raises on any integrity failure.

        :class:`CheckpointCorruptError` marks torn/rotted files (the
        restore scan quarantines these); :class:`CheckpointError` marks
        schema problems such as an unsupported format version.
        """
        manifest_path = Path(os.fspath(manifest_path))
        try:
            raw = manifest_path.read_bytes()
        except OSError as err:
            raise CheckpointCorruptError(
                f"cannot read manifest {manifest_path}: {err}"
            ) from err
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise CheckpointCorruptError(
                f"manifest {manifest_path} is not valid JSON "
                f"(torn write?): {err}"
            ) from err
        missing = [key for key in _MANIFEST_REQUIRED if key not in manifest]
        if missing:
            raise CheckpointCorruptError(
                f"manifest {manifest_path} is missing field(s) {missing}"
            )
        if manifest["format_version"] != FORMAT_VERSION:
            raise CheckpointError(
                f"snapshot {manifest_path} has format version "
                f"{manifest['format_version']}; this build reads version "
                f"{FORMAT_VERSION}"
            )
        if self._verify_manifest_digest and sha256_hex(
            _canonical(manifest)
        ) != manifest["digest"]:
            raise CheckpointCorruptError(
                f"manifest {manifest_path} failed its digest check"
            )
        payload_path = self.directory / manifest["payload"]
        try:
            payload = payload_path.read_bytes()
        except OSError as err:
            raise CheckpointCorruptError(
                f"snapshot payload {payload_path} is unreadable: {err}"
            ) from err
        if sha256_hex(payload) != manifest["payload_sha256"]:
            raise CheckpointCorruptError(
                f"snapshot payload {payload_path} failed its SHA-256 check "
                "(torn write or bit rot)"
            )
        try:
            arrays = load_npz_bytes(payload)
        except Exception as err:
            raise CheckpointCorruptError(
                f"snapshot payload {payload_path} is not a valid npz "
                f"archive: {err}"
            ) from err
        return Snapshot(
            kind=str(manifest["kind"]),
            step=int(manifest["step"]),
            arrays=arrays,
            meta=manifest["meta"],
            manifest=manifest,
            path=manifest_path,
        )

    def restore_latest(
        self,
        kind: str,
        context: Optional[Dict[str, Any]] = None,
        strict: bool = False,
    ) -> Optional[Snapshot]:
        """Newest valid snapshot of ``kind`` matching ``context``.

        Corrupt snapshots are quarantined and skipped (automatic
        fallback to the next most recent valid one); snapshots whose
        context does not match are skipped with a warning (they belong
        to a differently-configured run sharing the directory). Returns
        ``None`` when no usable snapshot exists.

        With ``strict=True``, *ending up empty-handed because of
        corruption* — at least one snapshot was quarantined and no valid
        one remained to fall back to — raises
        :class:`CheckpointCorruptError` instead of returning ``None``,
        so callers can distinguish "never existed" from "existed but
        unrecoverable" (the serving store turns the latter into
        degraded-mode serving rather than a 404).
        """
        corrupt: List[str] = []
        with OBS.span("checkpoint.restore"):
            for manifest_path in self.manifest_paths(kind):
                try:
                    snapshot = self.load(manifest_path)
                except CheckpointCorruptError as err:
                    self._quarantine(manifest_path, str(err))
                    corrupt.append(manifest_path.stem)
                    continue
                if context is not None:
                    mismatch = _context_mismatch(
                        snapshot.manifest.get("context", {}), context
                    )
                    if mismatch is not None:
                        _LOG.warning(
                            "skipping snapshot %s: context mismatch on %s",
                            manifest_path.name, mismatch,
                        )
                        continue
                if OBS.enabled:
                    OBS.registry.counter(
                        "repro_checkpoint_restores_total", {"kind": kind}
                    ).inc()
                    OBS.emit(
                        "checkpoint_restored",
                        snapshot_kind=kind,
                        step=snapshot.step,
                        path=str(manifest_path),
                    )
                _LOG.info(
                    "restored %s snapshot at step %d from %s",
                    kind, snapshot.step, manifest_path.name,
                )
                return snapshot
        if strict and corrupt:
            raise CheckpointCorruptError(
                f"every {kind!r} snapshot in {self.directory} was "
                f"quarantined as corrupt ({', '.join(corrupt)}); nothing "
                "valid left to restore"
            )
        return None

    # ------------------------------------------------------------------
    def _quarantine(self, manifest_path: Path, reason: str) -> None:
        """Move a corrupt snapshot's files out of the live directory."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        moved = []
        payload_path = manifest_path.with_suffix(".npz")
        for path in (manifest_path, payload_path):
            if path.exists():
                os.replace(path, self.quarantine_dir / path.name)
                moved.append(path.name)
        _LOG.warning(
            "quarantined corrupt snapshot %s (%s)", manifest_path.stem, reason
        )
        if OBS.enabled:
            OBS.registry.counter("repro_checkpoint_quarantined_total").inc()
            OBS.emit(
                "checkpoint_quarantined",
                snapshot=manifest_path.stem,
                files=moved,
                reason=reason,
            )

    def _sweep(self, kind: str) -> None:
        """Retention: keep the newest ``keep`` snapshots of ``kind``.

        Also removes orphan payloads of this kind (a payload whose
        manifest never landed — the footprint of a crash between the
        two writes). One ``os.scandir`` pass with string matching: this
        runs after every save, and on the serving spill path every
        eviction is a save, so two ``pathlib`` globs here were a
        measurable slice of the round trip.
        """
        prefix = f"{kind}-"
        directory = os.fspath(self.directory)
        manifest_steps: List[int] = []
        payload_steps: List[int] = []
        try:
            entries = os.scandir(directory)
        except OSError:
            return
        with entries:
            for entry in entries:
                name = entry.name
                if not name.startswith(prefix):
                    continue
                stem, _, ext = name.rpartition(".")
                step_text = stem[len(prefix) :]
                if not step_text.isdigit():
                    continue
                if ext == "json":
                    manifest_steps.append(int(step_text))
                elif ext == "npz":
                    payload_steps.append(int(step_text))
        manifest_steps.sort(reverse=True)
        live = set(manifest_steps[: self.keep])
        doomed = [(step, ".json") for step in manifest_steps[self.keep :]]
        doomed += [
            (step, ".npz")
            for step in set(manifest_steps[self.keep :]) | set(payload_steps)
            if step not in live
        ]
        for step, suffix in doomed:
            try:
                os.unlink(
                    os.path.join(directory, f"{prefix}{step:010d}{suffix}")
                )
            except OSError:
                pass


def _context_mismatch(
    stored: Dict[str, Any], expected: Dict[str, Any]
) -> Optional[str]:
    """First key where a snapshot's context disagrees with the run's."""
    for key, value in expected.items():
        if key not in stored:
            return f"{key} (absent in snapshot)"
        if stored[key] != value:
            return f"{key} ({stored[key]!r} != {value!r})"
    return None


# ----------------------------------------------------------------------
# Periodic checkpoint hooks
# ----------------------------------------------------------------------
class TrainingCheckpointer:
    """Episode-boundary auto-checkpointing for :meth:`DDPGAgent.train`.

    Duck-typed against the agent (``checkpoint_state`` /
    ``restore_checkpoint_state``) so the RL layer needs no import of
    this module. Episode boundaries are exact resume points: all RNG,
    optimizer, noise, replay, and history state is captured, so the
    continuation is bit-identical to an uninterrupted run.
    """

    kind = "train"

    def __init__(
        self,
        manager: CheckpointManager,
        every: int = 1,
        resume: bool = False,
        context: Optional[Dict[str, Any]] = None,
    ):
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        self.manager = manager
        self.every = every
        self.resume = resume
        self.context = dict(context or {})
        self.context.setdefault("phase", self.kind)

    def restore_into(self, agent) -> int:
        """Restore the newest matching snapshot; returns the start episode."""
        if not self.resume:
            return 0
        snapshot = self.manager.restore_latest(self.kind, context=self.context)
        if snapshot is None:
            return 0
        agent.restore_checkpoint_state(snapshot.arrays, snapshot.meta["agent"])
        return int(snapshot.meta["next_episode"])

    def after_episode(
        self, agent, episode_index: int, final: bool = False
    ) -> None:
        """Snapshot at the configured episode period.

        ``final=True`` (the last episode of the run) always snapshots,
        regardless of the period: a completed training run must be
        resumable without retraining, even when ``episodes`` is smaller
        than the snapshot period.
        """
        if not final and (episode_index + 1) % self.every != 0:
            return
        arrays, meta = agent.checkpoint_state()
        self.manager.save(
            self.kind,
            episode_index,
            arrays,
            meta={"agent": meta, "next_episode": episode_index + 1},
            context=self.context,
        )


class LoopCheckpointer:
    """Periodic step checkpointing for the EADRL online forecast loops.

    The loop owner supplies its resumable arrays/meta per step; this
    class handles the cadence, the snapshot composition, and restore.
    """

    def __init__(
        self,
        manager: CheckpointManager,
        kind: str,
        every: int = 50,
        resume: bool = False,
        context: Optional[Dict[str, Any]] = None,
    ):
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        self.manager = manager
        self.kind = kind
        self.every = every
        self.resume = resume
        self.context = dict(context or {})
        self.context.setdefault("phase", kind)

    def restore(self) -> Optional[Snapshot]:
        if not self.resume:
            return None
        return self.manager.restore_latest(self.kind, context=self.context)

    def due(self, step: int) -> bool:
        """True when ``after_step(step, ...)`` would actually save.

        Lets callers skip composing an expensive snapshot (e.g. a full
        agent state capture) on the steps between checkpoints.
        """
        return (step + 1) % self.every == 0

    def after_step(
        self,
        step: int,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, Any],
    ) -> None:
        if (step + 1) % self.every != 0:
            return
        meta = dict(meta)
        meta["next_step"] = step + 1
        self.manager.save(
            self.kind, step, arrays, meta=meta, context=self.context
        )
