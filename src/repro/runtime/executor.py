"""Pluggable parallel execution engine for pool-level fan-outs.

The paper trains the base models "in parallel and separately from each
other"; this module supplies the execution substrate that makes the three
pool fan-outs (member fitting, prequential prediction columns, online
one-step queries) actually scale with cores:

- ``"serial"`` — the default: a plain Python loop, bit-identical to the
  pre-executor behaviour with zero overhead;
- ``"thread"`` — a :class:`concurrent.futures.ThreadPoolExecutor`; best
  when members spend their time in numpy (which releases the GIL) or when
  task payloads are expensive to pickle;
- ``"process"`` — a :class:`concurrent.futures.ProcessPoolExecutor`; task
  functions and their arguments must be picklable. Best for CPU-bound
  pure-Python members, at the cost of pickling models across the
  boundary.

Regardless of backend, :func:`run_ordered` returns results **in task
order**, so callers can merge worker output deterministically (member
order) and produce output bit-identical to the serial backend for any
worker count. Tasks are expected to *return* failure information rather
than raise — an exception escaping a task is treated as a programming
error and propagated.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.obs import OBS

#: Recognised backend names, in documentation order.
BACKENDS = ("serial", "thread", "process")


def available_workers() -> int:
    """Usable CPU count (cgroup/affinity aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass
class ExecutorConfig:
    """Backend selection for the pool's parallel fan-outs.

    Attributes
    ----------
    backend:
        ``"serial"`` (default), ``"thread"``, or ``"process"``.
    n_jobs:
        Worker count for the parallel backends. ``None`` means "use every
        available core"; values are clamped to at least 1. Ignored by the
        serial backend.
    """

    backend: str = "serial"
    n_jobs: Optional[int] = None

    def validate(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"executor backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.n_jobs is not None and self.n_jobs < 1:
            raise ConfigurationError(
                f"n_jobs must be >= 1 or None, got {self.n_jobs}"
            )

    def resolved_jobs(self) -> int:
        """Effective worker count (1 for serial, capped at the CPU count)."""
        if self.backend == "serial":
            return 1
        if self.n_jobs is None:
            return available_workers()
        return max(1, self.n_jobs)

    @property
    def parallel(self) -> bool:
        """Whether this configuration can actually run tasks concurrently."""
        return self.backend != "serial" and self.resolved_jobs() > 1


def coerce_executor(
    executor: Optional[object], n_jobs: Optional[int] = None
) -> ExecutorConfig:
    """Normalise a user-facing executor spec into an :class:`ExecutorConfig`.

    Accepts ``None`` (serial), a backend name string, or an existing
    config instance (in which case ``n_jobs`` must not conflict).
    """
    if executor is None:
        config = ExecutorConfig(n_jobs=n_jobs)
    elif isinstance(executor, ExecutorConfig):
        config = executor
        if n_jobs is not None and config.n_jobs is None:
            config = ExecutorConfig(backend=config.backend, n_jobs=n_jobs)
    elif isinstance(executor, str):
        config = ExecutorConfig(backend=executor, n_jobs=n_jobs)
    else:
        raise ConfigurationError(
            f"executor must be a backend name, ExecutorConfig or None, "
            f"got {type(executor).__name__}"
        )
    config.validate()
    return config


def _call(task: Tuple[Callable[..., Any], tuple]) -> Any:
    fn, args = task
    return fn(*args)


def timed_call(fn: Callable[..., Any], args: tuple, submitted_at: float):
    """Run ``fn(*args)`` recording queue wait and work wall-clock.

    Returns ``(result, wait_seconds, work_seconds)``. Module-level so
    the process backend can pickle it; ``time.perf_counter`` is
    CLOCK_MONOTONIC-based on Linux and therefore comparable across the
    fork boundary (the wait is clamped at 0 as a portability guard).
    """
    started = time.perf_counter()
    result = fn(*args)
    finished = time.perf_counter()
    return result, max(0.0, started - submitted_at), finished - started


def record_task_timing(
    backend: str, name: Optional[str], wait: float, work: float
) -> None:
    """Publish one fan-out task's queue-wait/work split (enabled only)."""
    registry = OBS.registry
    labels = {"backend": backend}
    registry.histogram("repro_executor_queue_wait_seconds", labels).observe(wait)
    registry.histogram("repro_executor_work_seconds", labels).observe(work)
    if name is not None:
        member = {"member": name}
        registry.counter(
            "repro_executor_member_queue_wait_seconds_total", member
        ).inc(wait)
        registry.counter(
            "repro_executor_member_work_seconds_total", member
        ).inc(work)


def run_ordered(
    fn: Callable[..., Any],
    argtuples: Sequence[tuple],
    config: ExecutorConfig,
    task_names: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Run ``fn(*args)`` for every tuple in ``argtuples``; results in order.

    The serial backend (or a single worker) degenerates to a plain loop.
    For the process backend ``fn`` must be a module-level function and
    every argument picklable. When telemetry is enabled
    (:mod:`repro.obs`) every parallel task's queue wait (submit → start)
    and work time are recorded, labelled per member when ``task_names``
    is given; the serial loop and the disabled path are untouched.
    """
    jobs = config.resolved_jobs()
    if config.backend == "serial" or jobs == 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    workers = min(jobs, len(argtuples))
    if config.backend == "thread":
        pool_cls = concurrent.futures.ThreadPoolExecutor
    else:
        pool_cls = concurrent.futures.ProcessPoolExecutor
    with pool_cls(max_workers=workers) as pool:
        if not OBS.enabled:
            futures = [pool.submit(fn, *args) for args in argtuples]
            return [future.result() for future in futures]
        futures = [
            pool.submit(timed_call, fn, args, time.perf_counter())
            for args in argtuples
        ]
        results: List[Any] = []
        for i, future in enumerate(futures):
            result, wait, work = future.result()
            record_task_timing(
                config.backend,
                task_names[i] if task_names is not None else None,
                wait, work,
            )
            results.append(result)
        return results
