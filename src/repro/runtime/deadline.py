"""End-to-end request deadlines as absolute monotonic expiries.

A :class:`Deadline` pins a request's latency budget to one absolute
point on the monotonic clock, so the *remaining* budget shrinks as the
request moves through the stack (HTTP parse → admission → batcher queue
→ shard RPC → session step) instead of resetting at every hop. Each hop
sheds work whose deadline has already passed rather than spending
compute on an answer the client has given up on.

``time.monotonic`` is ``CLOCK_MONOTONIC`` on Linux and therefore
comparable across processes on the same host — the shard supervisor
ships ``expires_at`` to worker processes verbatim (the same property
:func:`repro.runtime.executor.timed_call` already relies on across the
fork boundary).
"""

from __future__ import annotations

import math
import time
from typing import Optional, Union

from repro.exceptions import ConfigurationError

__all__ = ["Deadline", "coerce_deadline"]


class Deadline:
    """An absolute expiry on the monotonic clock.

    Construct with :meth:`from_budget` (relative seconds from now),
    :meth:`at` (an absolute ``time.monotonic()`` value, e.g. received
    over shard RPC), or :meth:`never` (no deadline; ``remaining()`` is
    ``inf`` and ``expired()`` is always False).
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    # ------------------------------------------------------------------
    @classmethod
    def from_budget(cls, seconds: float) -> "Deadline":
        if seconds <= 0:
            raise ConfigurationError(
                f"deadline budget must be > 0 seconds, got {seconds}"
            )
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def at(cls, expires_at: float) -> "Deadline":
        return cls(expires_at)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(math.inf)

    # ------------------------------------------------------------------
    def remaining(self) -> float:
        """Seconds left; negative once expired, ``inf`` for never()."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def clamped(self, budget: float) -> "Deadline":
        """The tighter of this deadline and ``budget`` seconds from now."""
        return Deadline(min(self.expires_at, time.monotonic() + budget))

    @property
    def unbounded(self) -> bool:
        return math.isinf(self.expires_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.unbounded:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


def coerce_deadline(
    deadline: Optional[Union[float, Deadline]], default_budget: float
) -> Deadline:
    """Normalise a user-facing deadline into an absolute :class:`Deadline`.

    ``None`` means "use the service's configured budget"; a float is a
    *relative* budget in seconds, capped at ``default_budget`` so a
    client cannot hold server resources longer than the operator allows;
    an existing :class:`Deadline` (already absolute, e.g. propagated
    from an upstream hop) is capped the same way.
    """
    if deadline is None:
        return Deadline.from_budget(default_budget)
    if isinstance(deadline, Deadline):
        return deadline.clamped(default_budget)
    budget = float(deadline)
    if budget <= 0:
        raise ConfigurationError(
            f"deadline budget must be > 0 seconds, got {budget}"
        )
    return Deadline.from_budget(min(budget, default_budget))
