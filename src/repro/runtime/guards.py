"""Per-member call guards: timeout, bounded retry, output validation.

:class:`GuardedForecaster` wraps one pool member and mediates every
prediction call:

1. the member's circuit breaker is consulted (quarantined members are not
   called at all);
2. the call is executed under the configured timeout policy and retried
   (with optional exponential backoff) on exceptions and non-finite
   output;
3. the outcome is reported to the shared :class:`~repro.runtime.health.PoolHealth`
   registry and to the breaker.

Two consumption styles exist. The *strict* :meth:`GuardedForecaster.predict_next`
keeps the plain :class:`~repro.models.base.Forecaster` contract and raises
typed errors (:class:`~repro.exceptions.CircuitOpenError`,
:class:`~repro.exceptions.MemberFailureError`). The *degrading*
:meth:`GuardedForecaster.guarded_predict` never raises: it substitutes the
configured fallback value and returns a health flag, which is what
:class:`~repro.models.pool.ForecasterPool` uses to keep the ensemble
serving while members misbehave.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import CircuitOpenError, MemberFailureError
from repro.models.base import Forecaster
from repro.runtime.breaker import BreakerState, CircuitBreaker
from repro.runtime.config import RuntimeGuardConfig
from repro.runtime.health import PoolHealth


def renormalise_healthy(weights: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Restrict a simplex weight vector to the healthy members.

    Zeroes the weights of unhealthy members (``mask`` False) and
    renormalises the rest back onto the probability simplex. When every
    healthy member has (numerically) zero weight the healthy members
    share the mass uniformly. A fully healthy mask returns ``weights``
    unchanged (bit-identical no-fault behaviour).

    The caller is responsible for the all-unhealthy case (raising
    :class:`~repro.exceptions.EnsembleUnavailableError` at the ensemble
    layer); here it would be a programming error.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.all():
        return weights
    if not mask.any():
        raise ValueError("renormalise_healthy called with no healthy member")
    w = np.where(mask, weights, 0.0)
    total = w.sum()
    if total <= 1e-12:
        w = mask.astype(np.float64)
        total = w.sum()
    return w / total


def combine_masked(
    scaled_row: np.ndarray,
    weights: np.ndarray,
    mask: np.ndarray,
    step: int,
) -> Tuple[float, np.ndarray]:
    """Combine one prediction row, degrading over unhealthy members.

    Returns ``(scaled_output, effective_weights)``. With a fully healthy
    row this is exactly ``scaled_row @ weights`` (bit-for-bit the
    unguarded behaviour); otherwise quarantined members are
    zero-weighted and the rest renormalised on the simplex. Raises
    :class:`~repro.exceptions.EnsembleUnavailableError` when no member
    is healthy. Shared by every EADRL online loop and by
    :class:`repro.serving.SeriesSession` so batch and step-API
    forecasting stay bit-identical.
    """
    from repro.exceptions import EnsembleUnavailableError

    if mask.all():
        return float(scaled_row @ weights), weights
    if not mask.any():
        raise EnsembleUnavailableError(step)
    w = renormalise_healthy(weights, mask)
    return float(np.where(mask, scaled_row, 0.0) @ w), w


class GuardedForecaster(Forecaster):
    """Fault-isolation wrapper around one pool member.

    Parameters
    ----------
    inner:
        The wrapped forecaster. The guard exposes the same ``name`` and
        ``min_context`` so prediction-matrix columns stay identified.
    config:
        Guard/breaker settings (defaults: no timeout, 1 retry, breaker
        opening after 3 consecutive failures).
    health:
        Shared registry; a private one is created when omitted.
    """

    def __init__(
        self,
        inner: Forecaster,
        config: Optional[RuntimeGuardConfig] = None,
        health: Optional[PoolHealth] = None,
    ):
        super().__init__()
        self.inner = inner
        self.config = config if config is not None else RuntimeGuardConfig()
        self.config.validate()
        self.health = health if health is not None else PoolHealth()
        self.name = inner.name
        self.min_context = inner.min_context
        self._fitted = getattr(inner, "_fitted", False)
        self._steps = 0
        self._last_healthy: Optional[float] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            cooldown_steps=self.config.cooldown_steps,
            on_transition=self._on_transition,
        )
        self.health.member(self.name)  # register even before the first call

    def _on_transition(self, old: BreakerState, new: BreakerState) -> None:
        self.health.record_transition(self.name, self._steps, old, new)

    def __getstate__(self) -> dict:
        """Pickle support for the process executor backend.

        The per-call timeout thread pool is a live OS resource and is
        dropped; the worker-side copy lazily recreates one on demand.
        Everything else (inner model, breaker state, step counter, health
        registry reference) crosses the boundary intact.
        """
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def swap_health(self, health: PoolHealth) -> PoolHealth:
        """Re-point this guard's registry; returns the previous one.

        Used by the parallel pool paths to give each worker task a
        private scratch registry whose events are merged back into the
        shared one in member order (deterministic event logs under any
        backend). The breaker's transition callback reads
        ``self.health`` at call time, so swapping the attribute is
        sufficient.
        """
        previous = self.health
        self.health = health
        return previous

    # ------------------------------------------------------------------
    # Forecaster interface
    # ------------------------------------------------------------------
    def fit(self, series: np.ndarray) -> "GuardedForecaster":
        try:
            self.inner.fit(series)
        except Exception as exc:
            self.health.record_failure(self.name, -1, "fit_error", str(exc))
            raise
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        """Strict guarded call: raises typed errors instead of degrading."""
        self._steps += 1
        if not self.breaker.allow():
            self.health.record_skip(self.name)
            raise CircuitOpenError(self.name)
        value, kind, detail = self._attempt_with_retries(history)
        if kind is None:
            self._record_success(value)
            return float(value)
        self._record_failure(kind, detail)
        raise MemberFailureError(self.name, kind, detail)

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        """Strict vectorised prequential path (one guarded call per column)."""
        column, mask = self.guarded_rolling(series, start)
        if not mask.all():
            record = self.health.member(self.name)
            raise MemberFailureError(self.name, "degraded", record.last_error)
        return column

    # ------------------------------------------------------------------
    # Degrading interface (used by ForecasterPool)
    # ------------------------------------------------------------------
    def guarded_predict(self, history: np.ndarray) -> Tuple[float, bool]:
        """One guarded one-step forecast; never raises.

        Returns ``(value, healthy)`` where an unhealthy value is the
        configured fallback (persistence or last healthy prediction).
        """
        self._steps += 1
        if not self.breaker.allow():
            self.health.record_skip(self.name)
            return self._fallback(history), False
        value, kind, detail = self._attempt_with_retries(history)
        if kind is None:
            self._record_success(value)
            return float(value), True
        self._record_failure(kind, detail)
        return self._fallback(history), False

    def guarded_rolling(
        self, series: np.ndarray, start: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Guarded prequential column: ``(values, healthy_mask)``.

        Fast path: while the breaker is CLOSED, one vectorised
        :meth:`rolling_predictions` call on the wrapped member (identical
        output and near-zero overhead for healthy members, timed against
        a whole-column budget of ``timeout * n_steps``). Any exception,
        non-finite entry, or budget overrun drops the member to the
        per-step guarded loop, which applies the breaker, retries, and
        fallback individually at every step.
        """
        array = np.asarray(series, dtype=np.float64)
        n_steps = array.size - start
        if self.breaker.state is BreakerState.CLOSED:
            budget = (
                None if self.config.timeout is None
                else self.config.timeout * max(n_steps, 1)
            )
            t0 = time.monotonic()
            try:
                column = np.asarray(
                    self.inner.rolling_predictions(array, start), dtype=np.float64
                )
                elapsed = time.monotonic() - t0
                if (
                    column.shape == (n_steps,)
                    and np.all(np.isfinite(column))
                    and (budget is None or elapsed <= budget)
                ):
                    self._steps += n_steps
                    self.breaker.record_success()
                    self.health.record_success(self.name, count=n_steps)
                    if n_steps:
                        self._last_healthy = float(column[-1])
                    return column, np.ones(n_steps, dtype=bool)
            except Exception:  # noqa: BLE001 - any member error degrades
                pass
        column = np.empty(n_steps)
        mask = np.zeros(n_steps, dtype=bool)
        for i, t in enumerate(range(start, array.size)):
            column[i], mask[i] = self.guarded_predict(array[:t])
        return column, mask

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fallback(self, history: np.ndarray) -> float:
        self.health.record_fallback(self.name)
        if self.config.fallback == "last_healthy" and self._last_healthy is not None:
            return self._last_healthy
        return float(history[-1])

    def _record_success(self, value: float) -> None:
        self._last_healthy = float(value)
        self.breaker.record_success()
        self.health.record_success(self.name)

    def _record_failure(self, kind: str, detail: str) -> None:
        self.breaker.record_failure()
        self.health.record_failure(self.name, self._steps, kind, detail)

    def _attempt_with_retries(
        self, history: np.ndarray
    ) -> Tuple[float, Optional[str], str]:
        """Run one guarded prediction with bounded retry.

        Returns ``(value, failure_kind, detail)``; ``failure_kind`` is
        ``None`` on success. Timeouts are not retried (retrying a slow
        call doubles the damage); exceptions and non-finite output are.
        """
        kind, detail = "exception", "no attempt made"
        for attempt in range(self.config.max_retries + 1):
            if attempt and self.config.backoff > 0:
                time.sleep(self.config.backoff * 2 ** (attempt - 1))
            try:
                value, timed_out = self._timed_call(history)
            except Exception as exc:  # noqa: BLE001 - guard isolates anything
                kind, detail = "exception", f"{type(exc).__name__}: {exc}"
                continue
            if timed_out:
                return 0.0, "timeout", (
                    f"exceeded per-call budget of {self.config.timeout}s"
                )
            if not np.isfinite(value):
                kind, detail = "non_finite", f"member returned {value!r}"
                continue
            return value, None, ""
        return 0.0, kind, detail

    def _timed_call(self, history: np.ndarray) -> Tuple[float, bool]:
        """One raw call under the timeout policy; returns ``(value, timed_out)``."""
        timeout = self.config.timeout
        if timeout is None:
            return float(self.inner.predict_next(history)), False
        if self.config.timeout_mode == "thread":
            if self._executor is None:
                self._executor = concurrent.futures.ThreadPoolExecutor(max_workers=1)
            future = self._executor.submit(self.inner.predict_next, history)
            try:
                return float(future.result(timeout=timeout)), False
            except concurrent.futures.TimeoutError:
                # Abandon the hung worker; a fresh executor serves the
                # next call (the old thread finishes in the background).
                self._executor.shutdown(wait=False)
                self._executor = None
                return 0.0, True
        t0 = time.monotonic()
        value = float(self.inner.predict_next(history))
        return value, (time.monotonic() - t0) > timeout

    def __repr__(self) -> str:
        return (
            f"<GuardedForecaster {self.name!r} "
            f"breaker={self.breaker.state.value}>"
        )
