"""Jittered exponential-backoff retry for idempotent operations.

Retrying is only safe when the retried call cannot be applied twice —
the serving layer therefore uses this policy exclusively for idempotent
operations (sequence-numbered ``observe``, pure reads, conflict-tolerant
``create``). Backoff is exponential with full-range multiplicative
jitter so a fleet of clients retrying against a restarting shard does
not stampede it in lockstep, and every sleep is clamped to the
request's remaining :class:`~repro.runtime.deadline.Deadline` — a retry
never outlives the budget the caller is still waiting on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime.deadline import Deadline

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Bounded retry with jittered exponential backoff.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first call (1 = no retries).
    base / factor / max_backoff:
        Attempt ``k`` (0-based) sleeps ``base * factor**k`` seconds
        before retrying, capped at ``max_backoff``.
    jitter:
        Fraction of the backoff randomised symmetrically around it:
        ``0.5`` draws uniformly from ``[0.5b, 1.5b]``. ``0`` disables
        jitter (deterministic tests).
    """

    max_attempts: int = 3
    base: float = 0.05
    factor: float = 2.0
    max_backoff: float = 1.0
    jitter: float = 0.5

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base < 0 or self.max_backoff < 0 or self.factor < 1:
            raise ConfigurationError(
                "base/max_backoff must be >= 0 and factor >= 1"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    # ------------------------------------------------------------------
    def backoff(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Sleep before retry number ``attempt`` (0-based), jittered."""
        delay = min(self.base * self.factor ** attempt, self.max_backoff)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(0.0, delay)

    def call(
        self,
        fn: Callable[[], T],
        *,
        retry_on: Tuple[Type[BaseException], ...],
        deadline: Optional[Deadline] = None,
        rng: Optional[np.random.Generator] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Run ``fn`` with retries on the listed exception types.

        The final failure (attempts exhausted, or no budget left to
        sleep and try again) re-raises the last exception unchanged so
        callers keep their typed error taxonomy.
        """
        self.validate()
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as err:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise
                if deadline is not None and deadline.expired():
                    raise
                delay = self.backoff(attempt - 1, rng)
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline.remaining()))
                if on_retry is not None:
                    on_retry(attempt, err)
                if delay > 0:
                    time.sleep(delay)
