"""CART regression tree built from scratch (variance-reduction splits).

The tree is the workhorse for three pool families: decision-tree
regression (DT), random forests (RFR), and gradient boosting (GBM). The
split search is vectorised per feature via argsort + cumulative sums, so
building stays fast on embedded series (n up to a few thousand, k small).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models.base import WindowRegressor


@dataclass
class _Node:
    """One tree node; leaves carry ``value``, internal nodes a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Best (feature, threshold) by squared-error reduction, or ``None``.

    For each candidate feature the rows are sorted once; prefix sums give
    the SSE of every split position in O(n).
    """
    n = y.size
    best_gain = 1e-12
    best: Optional[tuple] = None
    total_sum = y.sum()
    total_sq = float(y @ y)
    base_sse = total_sq - total_sum * total_sum / n

    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="stable")
        xs = X[order, feature]
        ys = y[order]
        csum = np.cumsum(ys)
        csq = np.cumsum(ys * ys)
        # split after position i (left = 0..i), i from min_leaf-1 .. n-min_leaf-1
        idx = np.arange(min_samples_leaf - 1, n - min_samples_leaf)
        if idx.size == 0:
            continue
        valid = xs[idx] < xs[idx + 1]  # cannot split between equal values
        if not np.any(valid):
            continue
        idx = idx[valid]
        left_n = idx + 1.0
        right_n = n - left_n
        left_sum = csum[idx]
        right_sum = total_sum - left_sum
        left_sse = csq[idx] - left_sum * left_sum / left_n
        right_sse = (total_sq - csq[idx]) - right_sum * right_sum / right_n
        gains = base_sse - (left_sse + right_sse)
        pos = int(np.argmax(gains))
        if gains[pos] > best_gain:
            best_gain = float(gains[pos])
            threshold = 0.5 * (xs[idx[pos]] + xs[idx[pos] + 1])
            best = (int(feature), float(threshold))
    return best


class RegressionTree:
    """Plain CART regressor on design matrices (used standalone and as a
    weak learner inside RF/GBM).

    Parameters
    ----------
    max_depth:
        Maximum depth; ``None`` grows until leaves are pure/small.
    min_samples_split, min_samples_leaf:
        Pre-pruning controls.
    max_features:
        If set, the number of features sampled per split (random forests).
    rng:
        Generator used when ``max_features`` subsamples features.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ConfigurationError("invalid min_samples settings")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng()
        self._root: Optional[_Node] = None
        self.n_features_: Optional[int] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.size:
            raise DataValidationError(
                f"bad shapes for tree fit: X{X.shape}, y{y.shape}"
            )
        if y.size == 0:
            raise DataValidationError("cannot fit a tree on empty data")
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        n = y.size
        if n < self.min_samples_split:
            return node
        if self.max_depth is not None and depth >= self.max_depth:
            return node
        if np.ptp(y) < 1e-12:
            return node

        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            feature_indices = self._rng.choice(
                n_features, size=self.max_features, replace=False
            )
        else:
            feature_indices = np.arange(n_features)

        split = _best_split(X, y, feature_indices, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise DataValidationError("tree not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0])
        # Iterative routing; stack of (node, row-index array).
        stack: List[tuple] = [(self._root, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    @property
    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    @property
    def n_leaves(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)


class DecisionTreeForecaster(WindowRegressor):
    """DT family of the pool: CART on the k-dimensional embedding."""

    def __init__(
        self,
        embedding_dimension: int = 5,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 2,
    ):
        super().__init__(embedding_dimension)
        self._tree = RegressionTree(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf
        )
        depth_tag = max_depth if max_depth is not None else "inf"
        self.name = f"dt(depth={depth_tag})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        self._tree.fit(X, y)

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        return self._tree.predict(X)
