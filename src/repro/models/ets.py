"""Exponential-smoothing family: SES, Holt, and additive Holt-Winters.

Smoothing parameters are estimated by minimising the in-sample one-step
sum of squared errors with L-BFGS-B (scipy), with bounds keeping each
parameter inside the open unit interval. One-step forecasts re-run the
recursion over whatever history is supplied, so the models adapt to the
prequential protocol exactly like R's ``forecast`` package does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models.base import Forecaster
from repro.preprocessing.embedding import validate_series

_BOUND = (1e-3, 0.999)


class SimpleExpSmoothing(Forecaster):
    """SES: level-only exponential smoothing, flat forecast function."""

    def __init__(self, alpha: Optional[float] = None):
        super().__init__()
        if alpha is not None and not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.alpha_: Optional[float] = None
        self.name = "ets(ses)" if alpha is None else f"ets(ses,a={alpha})"
        self.min_context = 2

    @staticmethod
    def _sse(alpha: float, series: np.ndarray) -> float:
        level = series[0]
        sse = 0.0
        for value in series[1:]:
            error = value - level
            sse += error * error
            level += alpha * error
        return sse

    def fit(self, series: np.ndarray) -> "SimpleExpSmoothing":
        array = validate_series(series, min_length=3)
        if self.alpha is not None:
            self.alpha_ = self.alpha
        else:
            result = optimize.minimize_scalar(
                lambda a: self._sse(a, array), bounds=_BOUND, method="bounded"
            )
            self.alpha_ = float(result.x)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        array = self._check_history(history)
        level = array[0]
        for value in array[1:]:
            level += self.alpha_ * (value - level)
        return float(level)

    def predict_next_batch(self, histories) -> np.ndarray:
        """Run the level filter across tenants of equal history length.

        The recursion is elementwise per time step, so stacking all
        equal-length histories and updating one level *vector* per step
        reproduces each scalar recursion bitwise while collapsing N
        Python loops into one. Ragged lengths are grouped first.
        """
        self._check_fitted()
        arrays = [self._check_history(history) for history in histories]
        by_length: dict = {}
        for index, array in enumerate(arrays):
            by_length.setdefault(array.size, []).append(index)
        out = np.empty(len(arrays))
        for size, indices in by_length.items():
            block = np.stack([arrays[i] for i in indices])
            level = block[:, 0].copy()
            for t in range(1, size):
                level += self.alpha_ * (block[:, t] - level)
            out[indices] = level
        return out

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        out = np.empty(array.size - start)
        level = array[0]
        for t in range(1, array.size):
            if t >= start:
                out[t - start] = level
            level += self.alpha_ * (array[t] - level)
        return out


class Holt(Forecaster):
    """Holt's linear trend method (additive, optionally damped)."""

    def __init__(self, damped: bool = False):
        super().__init__()
        self.damped = damped
        self.params_: Optional[Tuple[float, float, float]] = None
        self.name = "ets(holt,damped)" if damped else "ets(holt)"
        self.min_context = 3

    def _run(
        self, params: np.ndarray, series: np.ndarray, collect_from: Optional[int] = None
    ):
        alpha, beta = params[0], params[1]
        phi = params[2] if self.damped else 1.0
        level = series[0]
        trend = series[1] - series[0]
        sse = 0.0
        collected = [] if collect_from is not None else None
        for t in range(1, series.size):
            forecast = level + phi * trend
            if collected is not None and t >= collect_from:
                collected.append(forecast)
            error = series[t] - forecast
            sse += error * error
            new_level = forecast + alpha * error
            trend = phi * trend + alpha * beta * error
            level = new_level
        final_forecast = level + phi * trend
        return sse, final_forecast, collected

    def fit(self, series: np.ndarray) -> "Holt":
        array = validate_series(series, min_length=4)
        n_params = 3 if self.damped else 2
        x0 = np.array([0.3, 0.1, 0.95][:n_params])
        bounds = [_BOUND, _BOUND, (0.8, 0.999)][:n_params]
        result = optimize.minimize(
            lambda p: self._run(p, array)[0], x0, bounds=bounds, method="L-BFGS-B"
        )
        params = np.array(result.x)
        if not self.damped:
            params = np.append(params, 1.0)
        self.params_ = tuple(float(v) for v in params)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        array = self._check_history(history)
        _, forecast, _ = self._run(np.array(self.params_), array)
        return float(forecast)

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        _, final_forecast, collected = self._run(
            np.array(self.params_), array, collect_from=start
        )
        return np.asarray(collected)


class HoltWinters(Forecaster):
    """Holt-Winters with seasonal period ``m``.

    Parameters
    ----------
    period:
        Seasonal period in steps.
    seasonal:
        ``"add"`` (default) for additive seasonality, ``"mul"`` for
        multiplicative (seasonal amplitude proportional to the level;
        requires a strictly positive series).
    """

    def __init__(self, period: int, seasonal: str = "add"):
        super().__init__()
        if period < 2:
            raise ConfigurationError(f"seasonal period must be >= 2, got {period}")
        if seasonal not in ("add", "mul"):
            raise ConfigurationError(
                f"seasonal must be 'add' or 'mul', got {seasonal!r}"
            )
        self.period = period
        self.seasonal = seasonal
        self.params_: Optional[Tuple[float, float, float]] = None
        tag = "" if seasonal == "add" else ",mul"
        self.name = f"ets(hw,{period}{tag})"
        self.min_context = 2 * period

    def _initial_components(self, series: np.ndarray):
        m = self.period
        level = float(series[:m].mean())
        trend = float((series[m : 2 * m].mean() - series[:m].mean()) / m)
        if self.seasonal == "mul":
            safe_level = level if abs(level) > 1e-12 else 1.0
            season = series[:m] / safe_level
        else:
            season = series[:m] - level
        return level, trend, season.copy()

    def _run(
        self, params: np.ndarray, series: np.ndarray, collect_from: Optional[int] = None
    ):
        alpha, beta, gamma = params
        m = self.period
        level, trend, season = self._initial_components(series)
        multiplicative = self.seasonal == "mul"
        sse = 0.0
        collected = [] if collect_from is not None else None
        for t in range(m, series.size):
            s_idx = t % m
            if multiplicative:
                forecast = (level + trend) * season[s_idx]
            else:
                forecast = level + trend + season[s_idx]
            if collected is not None and t >= collect_from:
                collected.append(forecast)
            error = series[t] - forecast
            sse += error * error
            if multiplicative:
                s_safe = season[s_idx] if abs(season[s_idx]) > 1e-12 else 1.0
                new_level = level + trend + alpha * error / s_safe
                trend = trend + alpha * beta * error / s_safe
                l_safe = new_level if abs(new_level) > 1e-12 else 1.0
                season[s_idx] = season[s_idx] + gamma * (1 - alpha) * error / l_safe
            else:
                new_level = level + trend + alpha * error
                trend = trend + alpha * beta * error
                season[s_idx] = season[s_idx] + gamma * (1 - alpha) * error
            level = new_level
        if multiplicative:
            final = (level + trend) * season[series.size % m]
        else:
            final = level + trend + season[series.size % m]
        return sse, final, collected

    def fit(self, series: np.ndarray) -> "HoltWinters":
        array = validate_series(series, min_length=self.min_context + 2)
        if self.seasonal == "mul" and array.min() <= 0:
            raise DataValidationError(
                "multiplicative Holt-Winters requires a strictly positive series"
            )
        x0 = np.array([0.3, 0.1, 0.1])
        result = optimize.minimize(
            lambda p: self._run(p, array)[0],
            x0,
            bounds=[_BOUND, _BOUND, _BOUND],
            method="L-BFGS-B",
        )
        self.params_ = tuple(float(v) for v in result.x)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        array = self._check_history(history)
        _, forecast, _ = self._run(np.array(self.params_), array)
        return float(forecast)

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        if start < self.period:
            raise ConfigurationError(
                f"start={start} must be >= seasonal period {self.period}"
            )
        _, _, collected = self._run(np.array(self.params_), array, collect_from=start)
        return np.asarray(collected)
