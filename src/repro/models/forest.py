"""Random-forest regression (Breiman 1996/2001) on embedded windows."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.models.tree import RegressionTree


class RandomForestForecaster(WindowRegressor):
    """Bagged CART ensemble with per-split feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of bootstrap trees.
    max_depth:
        Depth cap per tree (``None`` = grown out).
    max_features:
        Features considered per split; defaults to ``ceil(sqrt(k))``.
    seed:
        Seed for bootstrap resampling and feature subsampling.
    """

    def __init__(
        self,
        embedding_dimension: int = 5,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        super().__init__(embedding_dimension)
        if n_estimators < 1:
            raise ConfigurationError(
                f"n_estimators must be >= 1, got {n_estimators}"
            )
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: List[RegressionTree] = []
        self.name = f"rf(n={n_estimators})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n = y.size
        k = X.shape[1]
        max_features = (
            self.max_features
            if self.max_features is not None
            else max(1, int(np.ceil(np.sqrt(k))))
        )
        self._trees = []
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, size=n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(X[rows], y[rows])
            self._trees.append(tree)

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        total = np.zeros(X.shape[0])
        for tree in self._trees:
            total += tree.predict(X)
        return total / len(self._trees)
