"""Multivariate adaptive regression splines (Friedman 1991), simplified.

Forward pass: greedily add mirrored hinge pairs ``max(0, x_j − t)`` /
``max(0, t − x_j)`` that most reduce least-squares error, up to
``max_terms`` basis functions. Backward pass: prune terms one at a time
whenever removal improves the generalised cross-validation (GCV) score.
Interactions are limited to degree 1 (additive MARS), which is the
standard default of the R ``earth`` package for small k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor


@dataclass(frozen=True)
class _Hinge:
    """One hinge basis function max(0, s·(x_j − t)) with s ∈ {+1, −1}."""

    feature: int
    threshold: float
    sign: int

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return np.maximum(self.sign * (X[:, self.feature] - self.threshold), 0.0)


def _lstsq(B: np.ndarray, y: np.ndarray) -> np.ndarray:
    coeffs, *_ = np.linalg.lstsq(B, y, rcond=None)
    return coeffs


def _gcv(rss: float, n: int, n_terms: int, penalty: float = 3.0) -> float:
    """Friedman's GCV criterion with the standard d=3 penalty."""
    effective = n_terms + penalty * max(n_terms - 1, 0) / 2.0
    denom = (1.0 - effective / n) ** 2
    if denom <= 0:
        return np.inf
    return rss / (n * denom)


class MARSForecaster(WindowRegressor):
    """MARS family of the pool.

    Parameters
    ----------
    max_terms:
        Maximum basis functions (excluding the intercept).
    n_candidate_knots:
        Candidate thresholds per feature (quantile grid).
    """

    def __init__(
        self,
        embedding_dimension: int = 5,
        max_terms: int = 10,
        n_candidate_knots: int = 15,
    ):
        super().__init__(embedding_dimension)
        if max_terms < 1:
            raise ConfigurationError(f"max_terms must be >= 1, got {max_terms}")
        self.max_terms = max_terms
        self.n_candidate_knots = n_candidate_knots
        self._hinges: List[_Hinge] = []
        self._coeffs: Optional[np.ndarray] = None
        self.name = f"mars(terms={max_terms})"

    # ------------------------------------------------------------------
    def _design(self, X: np.ndarray, hinges: List[_Hinge]) -> np.ndarray:
        columns = [np.ones(X.shape[0])]
        columns.extend(h.evaluate(X) for h in hinges)
        return np.column_stack(columns)

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        n, k = X.shape
        quantiles = np.linspace(0.05, 0.95, self.n_candidate_knots)
        candidates: List[_Hinge] = []
        for j in range(k):
            thresholds = np.unique(np.quantile(X[:, j], quantiles))
            for t in thresholds:
                candidates.append(_Hinge(j, float(t), +1))
                candidates.append(_Hinge(j, float(t), -1))

        hinges: List[_Hinge] = []
        B = self._design(X, hinges)
        coeffs = _lstsq(B, y)
        residual = y - B @ coeffs
        best_rss = float(residual @ residual)

        # Forward pass: greedy hinge additions.
        while len(hinges) < self.max_terms and candidates:
            best_gain, best_idx = 1e-10, -1
            for idx, hinge in enumerate(candidates):
                col = hinge.evaluate(X)
                trial = np.column_stack([B, col])
                c = _lstsq(trial, y)
                rss = float(np.sum((y - trial @ c) ** 2))
                if best_rss - rss > best_gain:
                    best_gain = best_rss - rss
                    best_idx = idx
            if best_idx < 0:
                break
            chosen = candidates.pop(best_idx)
            hinges.append(chosen)
            B = self._design(X, hinges)
            coeffs = _lstsq(B, y)
            best_rss = float(np.sum((y - B @ coeffs) ** 2))

        # Backward pass: GCV pruning.
        improved = True
        best_score = _gcv(best_rss, n, len(hinges) + 1)
        while improved and hinges:
            improved = False
            for i in range(len(hinges)):
                trial_hinges = hinges[:i] + hinges[i + 1 :]
                B_trial = self._design(X, trial_hinges)
                c = _lstsq(B_trial, y)
                rss = float(np.sum((y - B_trial @ c) ** 2))
                score = _gcv(rss, n, len(trial_hinges) + 1)
                if score < best_score:
                    best_score = score
                    hinges = trial_hinges
                    improved = True
                    break

        self._hinges = hinges
        B = self._design(X, hinges)
        self._coeffs = _lstsq(B, y)

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        return self._design(X, self._hinges) @ self._coeffs

    @property
    def n_terms_(self) -> int:
        """Number of hinge terms surviving the backward pass."""
        self._check_fitted()
        return len(self._hinges)
