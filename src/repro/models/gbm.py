"""Gradient boosting machine (Friedman 2001) with squared-error loss.

Each stage fits a shallow CART tree to the current residuals and the
model accumulates ``learning_rate``-shrunk stage predictions starting
from the training mean.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.models.tree import RegressionTree


class GradientBoostingForecaster(WindowRegressor):
    """GBM family of the pool.

    Parameters
    ----------
    n_estimators:
        Boosting stages.
    learning_rate:
        Shrinkage applied to every stage.
    max_depth:
        Depth of each weak tree (the classic choice is 2-3).
    subsample:
        Fraction of rows sampled per stage (stochastic gradient boosting);
        1.0 disables subsampling.
    """

    def __init__(
        self,
        embedding_dimension: int = 5,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(embedding_dimension)
        if n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._trees: List[RegressionTree] = []
        self._base: float = 0.0
        self.name = f"gbm(n={n_estimators},lr={learning_rate})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n = y.size
        self._base = float(y.mean())
        current = np.full(n, self._base)
        self._trees = []
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                rows = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                rows = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[rows], residual[rows])
            current += self.learning_rate * tree.predict(X)
            self._trees.append(tree)

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        out = np.full(X.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions after each boosting stage; shape (stages, rows).

        Useful for early-stopping analyses and the ablation benches.
        """
        X = np.asarray(X, dtype=np.float64)
        out = np.empty((len(self._trees), X.shape[0]))
        current = np.full(X.shape[0], self._base)
        for i, tree in enumerate(self._trees):
            current = current + self.learning_rate * tree.predict(X)
            out[i] = current
        return out
