"""Forecaster interfaces shared by the whole base-model zoo.

Two shapes of model live in the pool:

- :class:`WindowRegressor` — models applied "after using time series
  embedding to dimension k" (paper §III): the series is embedded into
  ``(X, y)`` pairs and an ordinary regressor maps the last ``k`` values to
  the next one. All tree/kernel/linear/neural regressors take this form.
- Recursive filters (ARIMA, ETS) that maintain their own state and
  implement :meth:`Forecaster.predict_next` directly over a history array.

Both expose the same public surface:

``fit(series)``
    Train on a raw 1-D series.
``predict_next(history)``
    One-step-ahead forecast given the observed history (an array at least
    as long as the model's required context).
``rolling_predictions(series, start)``
    One-step-ahead forecast for every index ``t in [start, len(series))``
    given the *true* history before ``t`` (prequential protocol). This is
    the prediction matrix the ensemble combiners consume.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.exceptions import DataValidationError, NotFittedError
from repro.preprocessing.embedding import embed, validate_series


class Forecaster(abc.ABC):
    """Abstract base for every model in the pool ``M``."""

    #: short human-readable identifier, e.g. ``"arima(2,0,1)"``
    name: str = "forecaster"
    #: minimum history length required by :meth:`predict_next`
    min_context: int = 1

    def __init__(self) -> None:
        self._fitted = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, series: np.ndarray) -> "Forecaster":
        """Train on a raw series; returns ``self`` for chaining."""

    @abc.abstractmethod
    def predict_next(self, history: np.ndarray) -> float:
        """One-step-ahead point forecast given the observed ``history``."""

    def predict_next_batch(self, histories) -> np.ndarray:
        """One-step forecasts for N independent histories at once.

        ``histories`` is a sequence of 1-D arrays (possibly of different
        lengths — multi-tenant serving hands in one history per tenant).
        Entry ``i`` of the result is bit-identical to
        ``predict_next(histories[i])``; the default simply loops, and
        subclasses with a vectorised path override it under the same
        bit-identity contract (``tests/serving/test_batched_inference.py``
        pins this for every pool member the serving bench uses).
        """
        return np.array(
            [self.predict_next(history) for history in histories],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(type(self).__name__)

    def _check_history(self, history: np.ndarray) -> np.ndarray:
        array = validate_series(history, min_length=self.min_context)
        return array

    def _predict_next_trusted(self, history: np.ndarray) -> float:
        """One-step forecast over *pre-validated* history.

        Hot-loop hook: :meth:`rolling_predictions` and :meth:`forecast`
        validate their input once up front and then call this per step,
        so per-call validation cost is paid once instead of O(n) times.
        ``history`` is guaranteed to be a finite 1-D float64 array of at
        least ``min_context`` values. The default delegates to
        :meth:`predict_next`; subclasses with expensive validation
        override it.
        """
        return self.predict_next(history)

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast (feeds predictions back as input)."""
        if horizon < 1:
            raise DataValidationError(f"horizon must be >= 1, got {horizon}")
        context = np.asarray(history, dtype=np.float64)
        working = np.empty(context.size + horizon)
        working[: context.size] = context
        out = working[context.size :]
        for j in range(horizon):
            out[j] = self.predict_next(working[: context.size + j])
        return out.copy()

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        """Prequential one-step predictions for ``t in [start, n)``.

        Subclasses override this when a vectorised path exists; the
        default validates the series once and then loops
        :meth:`_predict_next_trusted` over growing history views.
        """
        array = validate_series(series, min_length=start + 1)
        if start < self.min_context:
            raise DataValidationError(
                f"start={start} smaller than required context {self.min_context}"
            )
        self._check_fitted()
        return np.array(
            [self._predict_next_trusted(array[:t]) for t in range(start, array.size)]
        )

    def __repr__(self) -> str:
        status = "fitted" if self._fitted else "unfitted"
        return f"<{type(self).__name__} {self.name!r} ({status})>"


class WindowRegressor(Forecaster):
    """Embedding-based forecaster wrapping a vector regressor.

    Subclasses implement :meth:`_fit_xy` and :meth:`_predict_matrix`; this
    class handles embedding, validation, and the vectorised prequential
    rolling-prediction path.

    Parameters
    ----------
    embedding_dimension:
        Number of lagged values fed to the regressor (paper: k = 5).
    """

    def __init__(self, embedding_dimension: int = 5):
        super().__init__()
        if embedding_dimension < 1:
            raise DataValidationError(
                f"embedding dimension must be >= 1, got {embedding_dimension}"
            )
        self.embedding_dimension = embedding_dimension
        self.min_context = embedding_dimension

    # -- subclass hooks -------------------------------------------------
    @abc.abstractmethod
    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fit the underlying regressor on embedded pairs."""

    @abc.abstractmethod
    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """Predict a batch of embedding rows; returns shape ``(len(X),)``."""

    # -- Forecaster interface -------------------------------------------
    def fit(self, series: np.ndarray) -> "WindowRegressor":
        X, y = embed(series, self.embedding_dimension)
        self._fit_xy(X, y)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        array = self._check_history(history)
        window = array[-self.embedding_dimension :][None, :]
        return float(self._predict_matrix(window)[0])

    def _predict_next_trusted(self, history: np.ndarray) -> float:
        window = history[-self.embedding_dimension :][None, :]
        return float(self._predict_matrix(window)[0])

    def predict_next_batch(self, histories) -> np.ndarray:
        self._check_fitted()
        k = self.embedding_dimension
        windows = np.stack(
            [self._check_history(history)[-k:] for history in histories]
        )
        return self._predict_window_rows(windows)

    def _predict_window_rows(self, windows: np.ndarray) -> np.ndarray:
        """Predict one step per stacked window row, bit-identically.

        ``_predict_matrix`` on an ``(N, k)`` block is NOT guaranteed to
        match the per-row ``(1, k)`` calls to the ulp (BLAS kernels
        differ by operand shape), so the default loops the single-row
        path; linear subclasses override with a per-slice batched
        matmul that does carry the guarantee.
        """
        return np.array(
            [float(self._predict_matrix(row[None, :])[0]) for row in windows],
            dtype=np.float64,
        )

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        if start < self.min_context:
            raise DataValidationError(
                f"start={start} smaller than required context {self.min_context}"
            )
        k = self.embedding_dimension
        idx = (np.arange(start, array.size)[:, None] - k) + np.arange(k)[None, :]
        return self._predict_matrix(array[idx])


class MeanForecaster(Forecaster):
    """Predicts the training mean; the weakest sane reference model."""

    name = "mean"

    def __init__(self) -> None:
        super().__init__()
        self._mean: Optional[float] = None

    def fit(self, series: np.ndarray) -> "MeanForecaster":
        self._mean = float(validate_series(series).mean())
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        return float(self._mean)

    def predict_next_batch(self, histories) -> np.ndarray:
        self._check_fitted()
        return np.full(len(histories), float(self._mean))

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        return np.full(array.size - start, self._mean)


class NaiveForecaster(Forecaster):
    """Random-walk forecast: predicts the last observed value."""

    name = "naive"

    def fit(self, series: np.ndarray) -> "NaiveForecaster":
        validate_series(series)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        return float(self._check_history(history)[-1])

    def predict_next_batch(self, histories) -> np.ndarray:
        self._check_fitted()
        return np.array(
            [float(self._check_history(history)[-1]) for history in histories],
            dtype=np.float64,
        )

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        return array[start - 1 : -1].copy()


class SeasonalNaiveForecaster(Forecaster):
    """Predicts the value one season ago (falls back to naive early on)."""

    def __init__(self, period: int):
        super().__init__()
        if period < 1:
            raise DataValidationError(f"period must be >= 1, got {period}")
        self.period = period
        self.name = f"snaive({period})"

    def fit(self, series: np.ndarray) -> "SeasonalNaiveForecaster":
        validate_series(series)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        array = self._check_history(history)
        if array.size >= self.period:
            return float(array[-self.period])
        return float(array[-1])

    def predict_next_batch(self, histories) -> np.ndarray:
        self._check_fitted()
        out = np.empty(len(histories))
        for i, history in enumerate(histories):
            array = self._check_history(history)
            source = -self.period if array.size >= self.period else -1
            out[i] = array[source]
        return out

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        steps = np.arange(start, array.size)
        # predicting at time t sees history array[:t]: the seasonal lag is
        # t - period when available, else the naive fallback t - 1
        sources = np.where(steps >= self.period, steps - self.period, steps - 1)
        return array[sources].copy()
