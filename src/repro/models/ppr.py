"""Projection pursuit regression (Friedman & Stuetzle 1981).

The model is an additive expansion ``ŷ = ȳ + Σ_m g_m(wᵀ_m x)`` fitted
stagewise on residuals: each stage alternates between (a) fitting a
smooth univariate ridge function ``g_m`` to the current projection and
(b) improving the projection direction ``w_m`` by derivative-free search
(Powell) over the unit sphere. Ridge functions are cubic polynomials —
smooth enough for the small embedding windows used by the pool.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import optimize

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.preprocessing.scaling import StandardScaler

_RIDGE_DEGREE = 3


def _fit_ridge_function(z: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Least-squares cubic polynomial coefficients for g(z) ≈ r."""
    return np.polyfit(z, r, deg=min(_RIDGE_DEGREE, max(1, np.unique(z).size - 1)))


def _eval_ridge(coeffs: np.ndarray, z: np.ndarray) -> np.ndarray:
    return np.polyval(coeffs, z)


class ProjectionPursuitForecaster(WindowRegressor):
    """PPR family of the pool.

    Parameters
    ----------
    n_terms:
        Number of ridge-function stages.
    n_direction_iters:
        Powell restarts per stage when optimising the direction.
    """

    def __init__(
        self,
        embedding_dimension: int = 5,
        n_terms: int = 3,
        n_direction_iters: int = 1,
        seed: int = 0,
    ):
        super().__init__(embedding_dimension)
        if n_terms < 1:
            raise ConfigurationError(f"n_terms must be >= 1, got {n_terms}")
        self.n_terms = n_terms
        self.n_direction_iters = n_direction_iters
        self.seed = seed
        self._x_scaler = StandardScaler()
        self._mean_y: float = 0.0
        self._stages: List[Tuple[np.ndarray, np.ndarray]] = []  # (w, poly coeffs)
        self.name = f"ppr(terms={n_terms})"

    @staticmethod
    def _normalise(w: np.ndarray) -> np.ndarray:
        norm = np.linalg.norm(w)
        return w / norm if norm > 1e-12 else np.ones_like(w) / np.sqrt(w.size)

    def _stage_sse(self, w: np.ndarray, X: np.ndarray, r: np.ndarray) -> float:
        w = self._normalise(w)
        z = X @ w
        coeffs = _fit_ridge_function(z, r)
        resid = r - _eval_ridge(coeffs, z)
        return float(resid @ resid)

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        Xs = self._x_scaler.fit_transform(X)
        self._mean_y = float(y.mean())
        residual = y - self._mean_y
        self._stages = []
        for _ in range(self.n_terms):
            # Start from the OLS direction of the residual, a strong guess.
            gram = Xs.T @ Xs + 1e-6 * np.eye(Xs.shape[1])
            w0 = self._normalise(np.linalg.solve(gram, Xs.T @ residual))
            best_w, best_sse = w0, self._stage_sse(w0, Xs, residual)
            for _ in range(self.n_direction_iters):
                start = self._normalise(w0 + 0.3 * rng.standard_normal(w0.size))
                result = optimize.minimize(
                    self._stage_sse,
                    start,
                    args=(Xs, residual),
                    method="Powell",
                    options={"maxiter": 50, "xtol": 1e-3, "ftol": 1e-4},
                )
                if result.fun < best_sse:
                    best_sse = float(result.fun)
                    best_w = self._normalise(np.asarray(result.x))
            z = Xs @ best_w
            coeffs = _fit_ridge_function(z, residual)
            self._stages.append((best_w, coeffs))
            residual = residual - _eval_ridge(coeffs, z)

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        Xs = self._x_scaler.transform(X)
        out = np.full(Xs.shape[0], self._mean_y)
        for w, coeffs in self._stages:
            out += _eval_ridge(coeffs, Xs @ w)
        return out
