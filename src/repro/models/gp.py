"""Gaussian-process regression with an RBF kernel (Rasmussen & Williams).

Exact GP inference via Cholesky factorisation of ``K + σ²I``; inputs and
targets are standardised internally so a unit length-scale is meaningful
across datasets with very different value ranges.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.preprocessing.scaling import StandardScaler


def rbf_kernel(A: np.ndarray, B: np.ndarray, length_scale: float) -> np.ndarray:
    """Squared-exponential kernel matrix between row sets ``A`` and ``B``."""
    sq_a = (A * A).sum(axis=1)[:, None]
    sq_b = (B * B).sum(axis=1)[None, :]
    sq_dist = np.maximum(sq_a + sq_b - 2.0 * A @ B.T, 0.0)
    return np.exp(-0.5 * sq_dist / (length_scale * length_scale))


class GaussianProcessForecaster(WindowRegressor):
    """GP family of the pool.

    Parameters
    ----------
    length_scale:
        RBF kernel length-scale (after input standardisation).
    noise:
        Observation-noise variance added to the kernel diagonal.
    max_train:
        Cap on training rows (most recent are kept) so the Cholesky stays
        cheap on long series.
    """

    def __init__(
        self,
        embedding_dimension: int = 5,
        length_scale: float = 1.0,
        noise: float = 0.1,
        max_train: int = 1000,
    ):
        super().__init__(embedding_dimension)
        if length_scale <= 0 or noise <= 0:
            raise ConfigurationError(
                f"length_scale and noise must be positive, got "
                f"({length_scale}, {noise})"
            )
        self.length_scale = length_scale
        self.noise = noise
        self.max_train = max_train
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self.name = f"gp(ls={length_scale})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        if X.shape[0] > self.max_train:
            X = X[-self.max_train :]
            y = y[-self.max_train :]
        Xs = self._x_scaler.fit_transform(X)
        ys = self._y_scaler.fit_transform(y)
        K = rbf_kernel(Xs, Xs, self.length_scale)
        K[np.diag_indices_from(K)] += self.noise
        self._chol = np.linalg.cholesky(K)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, ys)
        )
        self._X = Xs

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        Xs = self._x_scaler.transform(X)
        k_star = rbf_kernel(Xs, self._X, self.length_scale)
        mean = k_star @ self._alpha
        return self._y_scaler.inverse_transform(mean)

    def predict_with_std(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation for embedding rows ``X``."""
        self._check_fitted()
        Xs = self._x_scaler.transform(np.asarray(X, dtype=np.float64))
        k_star = rbf_kernel(Xs, self._X, self.length_scale)
        mean = self._y_scaler.inverse_transform(k_star @ self._alpha)
        v = np.linalg.solve(self._chol, k_star.T)
        prior_var = 1.0  # RBF kernel has unit signal variance
        var = np.maximum(prior_var - (v * v).sum(axis=0), 1e-12)
        std = np.sqrt(var) * self._y_scaler.scale_
        return mean, std
