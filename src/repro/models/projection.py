"""Linear projection regressors: PCR and PLS (plus plain ridge).

- :class:`PrincipalComponentForecaster` — PCA on the embedding, OLS on the
  leading components (PCMR in the paper's pool table).
- :class:`PLSForecaster` — partial least squares via the NIPALS
  algorithm, extracting components that maximise covariance with the
  target rather than input variance.
- :class:`RidgeForecaster` — L2-regularised least squares, used by
  several combiners as a cheap meta-learner.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.nn.batched import batched_matvec
from repro.preprocessing.scaling import StandardScaler


class PrincipalComponentForecaster(WindowRegressor):
    """PCR: OLS on the top principal components of the embedding."""

    def __init__(self, embedding_dimension: int = 5, n_components: int = 3):
        super().__init__(embedding_dimension)
        if n_components < 1:
            raise ConfigurationError(f"n_components must be >= 1, got {n_components}")
        if n_components > embedding_dimension:
            raise ConfigurationError(
                f"n_components={n_components} exceeds embedding "
                f"dimension {embedding_dimension}"
            )
        self.n_components = n_components
        self._x_scaler = StandardScaler()
        self._components: Optional[np.ndarray] = None
        self._coef: Optional[np.ndarray] = None
        self._intercept: float = 0.0
        self.name = f"pcr(c={n_components})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        Xs = self._x_scaler.fit_transform(X)
        _, _, vt = np.linalg.svd(Xs, full_matrices=False)
        self._components = vt[: self.n_components].T  # (k, c)
        scores = Xs @ self._components
        gram = scores.T @ scores + 1e-10 * np.eye(self.n_components)
        self._intercept = float(y.mean())
        self._coef = np.linalg.solve(gram, scores.T @ (y - self._intercept))

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        scores = self._x_scaler.transform(X) @ self._components
        return scores @ self._coef + self._intercept

    def _predict_window_rows(self, windows: np.ndarray) -> np.ndarray:
        # Per-slice matmuls keep each row bit-identical to the (1, k)
        # serial call; a plain 2-D gemm would not.
        Xs = self._x_scaler.transform(windows)
        scores = np.matmul(Xs[:, None, :], self._components)[:, 0, :]
        return batched_matvec(scores, self._coef) + self._intercept

    @property
    def explained_variance_ratio_(self) -> np.ndarray:
        """Variance fraction captured by each retained component."""
        self._check_fitted()
        return self._explained

    def fit(self, series: np.ndarray) -> "PrincipalComponentForecaster":
        result = super().fit(series)
        # Recompute explained variance for introspection.
        from repro.preprocessing.embedding import embed

        X, _ = embed(np.asarray(series, dtype=np.float64), self.embedding_dimension)
        Xs = self._x_scaler.transform(X)
        _, s, _ = np.linalg.svd(Xs, full_matrices=False)
        var = s ** 2
        self._explained = var[: self.n_components] / var.sum()
        return result


class PLSForecaster(WindowRegressor):
    """PLS regression via NIPALS (Wold); components maximise cov(X, y)."""

    def __init__(self, embedding_dimension: int = 5, n_components: int = 2):
        super().__init__(embedding_dimension)
        if n_components < 1 or n_components > embedding_dimension:
            raise ConfigurationError(
                f"n_components must be in [1, {embedding_dimension}], "
                f"got {n_components}"
            )
        self.n_components = n_components
        self._x_scaler = StandardScaler()
        self._y_mean: float = 0.0
        self._coef: Optional[np.ndarray] = None
        self.name = f"pls(c={n_components})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        Xs = self._x_scaler.fit_transform(X)
        self._y_mean = float(y.mean())
        residual_y = (y - self._y_mean).astype(np.float64)
        E = Xs.copy()
        weights, loadings, y_loadings = [], [], []
        for _ in range(self.n_components):
            w = E.T @ residual_y
            norm = np.linalg.norm(w)
            if norm < 1e-12:
                break
            w /= norm
            t = E @ w
            tt = float(t @ t)
            if tt < 1e-12:
                break
            p = E.T @ t / tt
            q = float(residual_y @ t / tt)
            E = E - np.outer(t, p)
            residual_y = residual_y - q * t
            weights.append(w)
            loadings.append(p)
            y_loadings.append(q)
        if not weights:
            self._coef = np.zeros(Xs.shape[1])
            return
        W = np.column_stack(weights)
        P = np.column_stack(loadings)
        q = np.asarray(y_loadings)
        # β = W (PᵀW)⁻¹ q — the standard PLS regression coefficients.
        self._coef = W @ np.linalg.solve(P.T @ W, q)

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        return self._x_scaler.transform(X) @ self._coef + self._y_mean

    def _predict_window_rows(self, windows: np.ndarray) -> np.ndarray:
        return (
            batched_matvec(self._x_scaler.transform(windows), self._coef)
            + self._y_mean
        )


class RidgeForecaster(WindowRegressor):
    """L2-regularised linear autoregression on the embedding."""

    def __init__(self, embedding_dimension: int = 5, alpha: float = 1.0):
        super().__init__(embedding_dimension)
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self._x_scaler = StandardScaler()
        self._coef: Optional[np.ndarray] = None
        self._intercept: float = 0.0
        self.name = f"ridge(a={alpha})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        Xs = self._x_scaler.fit_transform(X)
        self._intercept = float(y.mean())
        gram = Xs.T @ Xs + self.alpha * np.eye(Xs.shape[1])
        self._coef = np.linalg.solve(gram, Xs.T @ (y - self._intercept))

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        return self._x_scaler.transform(X) @ self._coef + self._intercept

    def _predict_window_rows(self, windows: np.ndarray) -> np.ndarray:
        return (
            batched_matvec(self._x_scaler.transform(windows), self._coef)
            + self._intercept
        )
