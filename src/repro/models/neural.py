"""MLP forecaster trained with Adam on embedded windows."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.nn import Adam, Tensor, mlp, mse_loss
from repro.preprocessing.scaling import StandardScaler


class MLPForecaster(WindowRegressor):
    """MLP family of the pool.

    Inputs and targets are standardised internally; training uses
    full-batch Adam, which at these problem sizes is both faster and more
    stable than mini-batching through a Python-level autograd.

    Parameters
    ----------
    hidden:
        Hidden-layer widths, e.g. ``(16,)`` or ``(32, 16)``.
    epochs, lr:
        Adam training budget.
    activation:
        Hidden activation name (``"relu"`` or ``"tanh"``).
    seed:
        Seed for weight init (deterministic training).
    """

    def __init__(
        self,
        embedding_dimension: int = 5,
        hidden: Sequence[int] = (16,),
        epochs: int = 200,
        lr: float = 0.01,
        activation: str = "relu",
        seed: int = 0,
    ):
        super().__init__(embedding_dimension)
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if not hidden:
            raise ConfigurationError("hidden must contain at least one width")
        self.hidden = tuple(int(h) for h in hidden)
        self.epochs = epochs
        self.lr = lr
        self.activation = activation
        self.seed = seed
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self._net = None
        self.loss_history_: List[float] = []
        hidden_tag = "x".join(str(h) for h in self.hidden)
        self.name = f"mlp({hidden_tag})"

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        Xs = self._x_scaler.fit_transform(X)
        ys = self._y_scaler.fit_transform(y)[:, None]
        sizes = [self.embedding_dimension, *self.hidden, 1]
        self._net = mlp(sizes, rng=rng, activation=self.activation)
        optimizer = Adam(self._net.parameters(), lr=self.lr)
        inputs = Tensor(Xs)
        targets = Tensor(ys)
        self.loss_history_ = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            loss = mse_loss(self._net(inputs), targets)
            loss.backward()
            optimizer.step()
            self.loss_history_.append(loss.item())

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        Xs = self._x_scaler.transform(X)
        out = self._net(Tensor(Xs)).numpy()[:, 0]
        return self._y_scaler.inverse_transform(out)
