"""Sequence-model forecasters: LSTM, Bi-LSTM, CNN-LSTM, and Conv-LSTM.

All four consume a length-``window`` slice of the series (their own
"embedding" — the paper lets every family pick its parameters) reshaped
to a batch-first sequence, and are trained with Adam through the
from-scratch autograd. Inputs/targets are standardised internally.

The Conv-LSTM follows Shi et al. (2015): the LSTM gates are computed by
*convolutions* over a spatial axis. Here the spatial axis is a short
sub-window of the series and the temporal axis iterates over consecutive
sub-windows, which is the standard adaptation for univariate forecasting.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.nn import (
    Adam,
    BiLSTM,
    Conv1d,
    LSTM,
    Linear,
    Module,
    Parameter,
    Tensor,
    mse_loss,
)
from repro.nn.init import xavier_uniform
from repro.preprocessing.scaling import StandardScaler


class _SequenceForecaster(WindowRegressor):
    """Shared fit/predict loop; subclasses provide the network builder."""

    def __init__(
        self,
        window: int,
        epochs: int,
        lr: float,
        seed: int,
    ):
        super().__init__(embedding_dimension=window)
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        self.window = window
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self._net: Optional[Module] = None
        self.loss_history_: List[float] = []

    def _build(self, rng: np.random.Generator) -> Module:
        raise NotImplementedError

    def _to_sequence(self, X: np.ndarray) -> Tensor:
        """Reshape flat windows (rows, window) to (rows, window, 1)."""
        return Tensor(X[:, :, None])

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        Xs = self._x_scaler.fit_transform(X.reshape(-1, 1)).reshape(X.shape)
        ys = self._y_scaler.fit_transform(y)[:, None]
        self._net = self._build(rng)
        optimizer = Adam(self._net.parameters(), lr=self.lr)
        inputs = self._to_sequence(Xs)
        targets = Tensor(ys)
        self.loss_history_ = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            loss = mse_loss(self._net(inputs), targets)
            loss.backward()
            optimizer.step()
            self.loss_history_.append(loss.item())

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        Xs = self._x_scaler.transform(X.reshape(-1, 1)).reshape(X.shape)
        out = self._net(self._to_sequence(Xs)).numpy()[:, 0]
        return self._y_scaler.inverse_transform(out)


class _LSTMHead(Module):
    def __init__(self, hidden: int, rng: np.random.Generator, bidirectional: bool):
        super().__init__()
        if bidirectional:
            self.rnn = BiLSTM(1, hidden, rng=rng)
            head_in = 2 * hidden
        else:
            self.rnn = LSTM(1, hidden, rng=rng)
            head_in = hidden
        self.head = Linear(head_in, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.rnn.last_hidden(x))


class LSTMForecaster(_SequenceForecaster):
    """Vanilla LSTM regressor over the last ``window`` values."""

    def __init__(
        self,
        window: int = 10,
        hidden: int = 8,
        epochs: int = 60,
        lr: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(window, epochs, lr, seed)
        self.hidden = hidden
        self.name = f"lstm(w={window},h={hidden})"

    def _build(self, rng: np.random.Generator) -> Module:
        return _LSTMHead(self.hidden, rng, bidirectional=False)


class BiLSTMForecaster(_SequenceForecaster):
    """Bidirectional LSTM regressor (Sun et al. 2018 style)."""

    def __init__(
        self,
        window: int = 10,
        hidden: int = 6,
        epochs: int = 60,
        lr: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(window, epochs, lr, seed)
        self.hidden = hidden
        self.name = f"bilstm(h={hidden})"

    def _build(self, rng: np.random.Generator) -> Module:
        return _LSTMHead(self.hidden, rng, bidirectional=True)


class _CNNLSTMNet(Module):
    """Conv1d feature extractor feeding an LSTM (Kim & Cho 2019)."""

    def __init__(
        self, filters: int, kernel: int, hidden: int, rng: np.random.Generator
    ):
        super().__init__()
        self.conv = Conv1d(1, filters, kernel, rng=rng)
        self.rnn = LSTM(filters, hidden, rng=rng)
        self.head = Linear(hidden, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        features = self.conv(x).relu()
        return self.head(self.rnn.last_hidden(features))


class CNNLSTMForecaster(_SequenceForecaster):
    """CNN-LSTM family of the pool."""

    def __init__(
        self,
        window: int = 12,
        filters: int = 8,
        kernel: int = 3,
        hidden: int = 8,
        epochs: int = 60,
        lr: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(window, epochs, lr, seed)
        if kernel >= window:
            raise ConfigurationError(
                f"kernel {kernel} must be smaller than window {window}"
            )
        self.filters = filters
        self.kernel = kernel
        self.hidden = hidden
        self.name = f"cnnlstm(f={filters},h={hidden})"

    def _build(self, rng: np.random.Generator) -> Module:
        return _CNNLSTMNet(self.filters, self.kernel, self.hidden, rng)


class ConvLSTMCell(Module):
    """ConvLSTM cell (Shi et al. 2015): gates via 'same' convolutions.

    States have shape ``(batch, width, hidden_channels)``; the gate
    convolution acts over the width (spatial) axis of the concatenated
    input and hidden state.
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        kernel: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.hidden_channels = hidden_channels
        self.gates = Conv1d(
            in_channels + hidden_channels,
            4 * hidden_channels,
            kernel,
            rng=rng,
            padding="same",
        )

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        stacked = Tensor.concatenate([x, h_prev], axis=2)
        gates = self.gates(stacked)
        hc = self.hidden_channels
        i = gates[:, :, 0:hc].sigmoid()
        f = gates[:, :, hc : 2 * hc].sigmoid()
        g = gates[:, :, 2 * hc : 3 * hc].tanh()
        o = gates[:, :, 3 * hc : 4 * hc].sigmoid()
        c_new = f * c_prev + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int, width: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, width, self.hidden_channels))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class _ConvLSTMNet(Module):
    """Conv-LSTM over sub-window frames, mean-pooled into a linear head."""

    def __init__(
        self,
        frame_width: int,
        n_frames: int,
        hidden_channels: int,
        kernel: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.frame_width = frame_width
        self.n_frames = n_frames
        self.cell = ConvLSTMCell(1, hidden_channels, kernel, rng=rng)
        self.head = Linear(frame_width * hidden_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        # x: (batch, window, 1) → frames (batch, n_frames, frame_width, 1)
        batch = x.shape[0]
        frames = x.reshape(batch, self.n_frames, self.frame_width, 1)
        h, c = self.cell.initial_state(batch, self.frame_width)
        for t in range(self.n_frames):
            h, c = self.cell(frames[:, t, :, :], (h, c))
        flat = h.reshape(batch, self.frame_width * self.cell.hidden_channels)
        return self.head(flat)


class ConvLSTMForecaster(_SequenceForecaster):
    """Conv-LSTM family of the pool.

    The ``window`` is split into ``n_frames`` consecutive sub-windows of
    ``frame_width`` values; ``window = n_frames * frame_width`` must hold.
    """

    def __init__(
        self,
        frame_width: int = 4,
        n_frames: int = 3,
        hidden_channels: int = 4,
        kernel: int = 3,
        epochs: int = 60,
        lr: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(frame_width * n_frames, epochs, lr, seed)
        if kernel > frame_width:
            raise ConfigurationError(
                f"kernel {kernel} must be <= frame width {frame_width}"
            )
        self.frame_width = frame_width
        self.n_frames = n_frames
        self.hidden_channels = hidden_channels
        self.kernel = kernel
        self.name = f"convlstm(w={frame_width}x{n_frames})"

    def _build(self, rng: np.random.Generator) -> Module:
        return _ConvLSTMNet(
            self.frame_width, self.n_frames, self.hidden_channels, self.kernel, rng
        )


class StackedLSTMForecaster(_SequenceForecaster):
    """StLSTM baseline: multiple LSTM layers stacked (cascading ensemble)."""

    def __init__(
        self,
        window: int = 10,
        hidden: int = 8,
        num_layers: int = 2,
        epochs: int = 60,
        lr: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(window, epochs, lr, seed)
        if num_layers < 2:
            raise ConfigurationError(
                f"a stacked LSTM needs num_layers >= 2, got {num_layers}"
            )
        self.hidden = hidden
        self.num_layers = num_layers
        self.name = f"stlstm(h={hidden},l={num_layers})"

    def _build(self, rng: np.random.Generator) -> Module:
        class _Net(Module):
            def __init__(net_self):
                super().__init__()
                net_self.rnn = LSTM(1, self.hidden, num_layers=self.num_layers, rng=rng)
                net_self.head = Linear(self.hidden, 1, rng=rng)

            def forward(net_self, x: Tensor) -> Tensor:
                return net_self.head(net_self.rnn.last_hidden(x))

        return _Net()
