"""Kernel support-vector regression via primal subgradient descent.

Using the representer theorem, the regression function is
``f(x) = Σ_i β_i k(x_i, x) + b``; we minimise the regularised
ε-insensitive risk

    C · Σ_j max(0, |f(x_j) − y_j| − ε)  +  ½ βᵀKβ

by deterministic subgradient descent with a decaying step size. This is
the classic primal formulation (Chapelle 2007) and converges to the same
solution family as SMO on the dual at the small problem sizes used here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import WindowRegressor
from repro.models.gp import rbf_kernel
from repro.preprocessing.scaling import StandardScaler


class SVRForecaster(WindowRegressor):
    """SVR family of the pool.

    Parameters
    ----------
    kernel:
        ``"rbf"`` or ``"linear"``.
    C:
        Slack-penalty weight.
    epsilon:
        Width of the insensitive tube (after target standardisation).
    gamma:
        RBF width parameter; ``k(a,b) = exp(-gamma ||a-b||²)``.
    n_iter:
        Subgradient steps.
    """

    def __init__(
        self,
        embedding_dimension: int = 5,
        kernel: str = "rbf",
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma: float = 0.5,
        n_iter: int = 200,
        max_train: int = 1000,
    ):
        super().__init__(embedding_dimension)
        if kernel not in ("rbf", "linear"):
            raise ConfigurationError(f"kernel must be 'rbf' or 'linear', got {kernel!r}")
        if C <= 0 or epsilon < 0 or gamma <= 0 or n_iter < 1:
            raise ConfigurationError("invalid SVR hyper-parameters")
        self.kernel = kernel
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.n_iter = n_iter
        self.max_train = max_train
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self._X: Optional[np.ndarray] = None
        self._beta: Optional[np.ndarray] = None
        self._bias: float = 0.0
        self.name = f"svr({kernel},C={C},eps={epsilon})"

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        length_scale = 1.0 / np.sqrt(2.0 * self.gamma)
        return rbf_kernel(A, B, length_scale)

    def _fit_xy(self, X: np.ndarray, y: np.ndarray) -> None:
        if X.shape[0] > self.max_train:
            X = X[-self.max_train :]
            y = y[-self.max_train :]
        Xs = self._x_scaler.fit_transform(X)
        ys = self._y_scaler.fit_transform(y)
        n = ys.size
        K = self._kernel_matrix(Xs, Xs)
        # Warm start from the kernel-ridge solution (K + I/C)β = y, the
        # ε→0 limit of the SVR primal; the subgradient loop then sharpens
        # it toward the ε-insensitive solution.
        ridge = K + np.eye(n) / self.C
        beta = np.linalg.solve(ridge, ys)
        bias = 0.0

        def objective(b: np.ndarray, b0: float) -> float:
            f = K @ b + b0
            hinge = np.maximum(np.abs(f - ys) - self.epsilon, 0.0)
            return self.C * float(hinge.sum()) + 0.5 * float(b @ K @ b)

        best_beta, best_bias = beta.copy(), bias
        best_obj = objective(beta, bias)
        for it in range(self.n_iter):
            f = K @ beta + bias
            error = f - ys
            sign = np.sign(error) * (np.abs(error) > self.epsilon)
            # Functional (K-preconditioned) subgradient of the primal
            # C·Σ hinge + ½ βᵀKβ is C·sign + β; dividing by n keeps the
            # per-iteration update O(1) regardless of sample count.
            grad_beta = (self.C * sign + beta) / n
            grad_bias = self.C * float(sign.mean())
            step = 0.5 / (1.0 + it)
            beta = beta - step * grad_beta
            bias = bias - step * grad_bias
            obj = objective(beta, bias)
            if obj < best_obj:
                best_obj = obj
                best_beta, best_bias = beta.copy(), bias
        self._X = Xs
        self._beta = best_beta
        self._bias = best_bias

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        Xs = self._x_scaler.transform(X)
        f = self._kernel_matrix(Xs, self._X) @ self._beta + self._bias
        return self._y_scaler.inverse_transform(f)

    @property
    def support_fraction(self) -> float:
        """Fraction of training points with non-negligible dual weight."""
        self._check_fitted()
        return float(np.mean(np.abs(self._beta) > 1e-8))
