"""Base-forecaster zoo: 16 families, 43-model pool (paper §III)."""

from repro.models.arima import ARIMA, auto_arima
from repro.models.base import (
    Forecaster,
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
    WindowRegressor,
)
from repro.models.ets import Holt, HoltWinters, SimpleExpSmoothing
from repro.models.forest import RandomForestForecaster
from repro.models.gbm import GradientBoostingForecaster
from repro.models.gp import GaussianProcessForecaster, rbf_kernel
from repro.models.mars import MARSForecaster
from repro.models.neural import MLPForecaster
from repro.models.pool import ForecasterPool, build_pool, build_pool_for_series
from repro.models.ppr import ProjectionPursuitForecaster
from repro.models.projection import (
    PLSForecaster,
    PrincipalComponentForecaster,
    RidgeForecaster,
)
from repro.models.recurrent_forecasters import (
    BiLSTMForecaster,
    CNNLSTMForecaster,
    ConvLSTMCell,
    ConvLSTMForecaster,
    LSTMForecaster,
    StackedLSTMForecaster,
)
from repro.models.svr import SVRForecaster
from repro.models.tree import DecisionTreeForecaster, RegressionTree

__all__ = [
    "ARIMA",
    "BiLSTMForecaster",
    "CNNLSTMForecaster",
    "ConvLSTMCell",
    "ConvLSTMForecaster",
    "DecisionTreeForecaster",
    "Forecaster",
    "ForecasterPool",
    "GaussianProcessForecaster",
    "GradientBoostingForecaster",
    "Holt",
    "HoltWinters",
    "LSTMForecaster",
    "MARSForecaster",
    "MLPForecaster",
    "MeanForecaster",
    "NaiveForecaster",
    "PLSForecaster",
    "PrincipalComponentForecaster",
    "ProjectionPursuitForecaster",
    "RandomForestForecaster",
    "RegressionTree",
    "RidgeForecaster",
    "SVRForecaster",
    "SeasonalNaiveForecaster",
    "SimpleExpSmoothing",
    "StackedLSTMForecaster",
    "WindowRegressor",
    "auto_arima",
    "build_pool",
    "build_pool_for_series",
    "rbf_kernel",
]
