"""ARIMA(p, d, q) fitted by Hannan-Rissanen two-stage least squares.

Stage 1 fits a long autoregression by OLS to estimate the innovation
sequence; stage 2 regresses the (differenced) series on its own lags and
the lagged innovations. This is the classic closed-form ARMA estimator —
asymptotically equivalent to conditional sum-of-squares and fast enough to
fit dozens of configurations in a benchmark sweep.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models.base import Forecaster
from repro.preprocessing.embedding import validate_series


def _ols(X: np.ndarray, y: np.ndarray, ridge: float = 1e-8) -> np.ndarray:
    """Least squares with a tiny ridge for numerical safety."""
    gram = X.T @ X
    gram[np.diag_indices_from(gram)] += ridge
    return np.linalg.solve(gram, X.T @ y)


def auto_arima(
    series: np.ndarray,
    max_p: int = 3,
    max_q: int = 2,
    d_candidates=(0, 1),
) -> "ARIMA":
    """Select ARIMA orders by AIC over a small grid and return the fit.

    Mirrors the default behaviour of R's ``auto.arima`` at a reduced
    grid: every ``(p, d, q)`` with ``p ≤ max_p``, ``q ≤ max_q``,
    ``d ∈ d_candidates`` (excluding the degenerate ``p = q = 0``) is fit
    by Hannan-Rissanen and scored with
    ``AIC = n·log(σ̂²) + 2·(p + q + 1)``.
    """
    if max_p < 0 or max_q < 0 or max_p + max_q == 0:
        raise ConfigurationError(
            f"need max_p + max_q >= 1, got ({max_p}, {max_q})"
        )
    array = validate_series(series, min_length=max(max_p, max_q) + 20)
    best_model: Optional[ARIMA] = None
    best_aic = np.inf
    for d in d_candidates:
        n_effective = array.size - d
        for p in range(max_p + 1):
            for q in range(max_q + 1):
                if p == 0 and q == 0:
                    continue
                try:
                    model = ARIMA(p, d, q).fit(array)
                except (DataValidationError, np.linalg.LinAlgError):
                    continue
                k = p + q + 1  # + intercept
                aic = n_effective * np.log(max(model.sigma2_, 1e-300)) + 2 * k
                if aic < best_aic:
                    best_aic = aic
                    best_model = model
    if best_model is None:
        raise DataValidationError("no ARIMA candidate could be fitted")
    best_model.aic_ = float(best_aic)
    return best_model


class ARIMA(Forecaster):
    """Autoregressive integrated moving-average forecaster.

    Parameters
    ----------
    p, d, q:
        AR order, differencing order, MA order. ``d`` may be 0 or 1
        (second differencing is never used in the paper's pool).
    """

    def __init__(self, p: int = 1, d: int = 0, q: int = 0):
        super().__init__()
        if p < 0 or q < 0 or d not in (0, 1):
            raise ConfigurationError(
                f"invalid ARIMA orders (p={p}, d={d}, q={q}); "
                "need p,q >= 0 and d in {0, 1}"
            )
        if p == 0 and q == 0:
            raise ConfigurationError("ARIMA needs p > 0 or q > 0")
        self.p, self.d, self.q = p, d, q
        self.name = f"arima({p},{d},{q})"
        self.min_context = max(p, q) + d + 1
        self.intercept_: Optional[float] = None
        self.ar_: Optional[np.ndarray] = None
        self.ma_: Optional[np.ndarray] = None
        self.sigma2_: Optional[float] = None

    # ------------------------------------------------------------------
    def _difference(self, series: np.ndarray) -> np.ndarray:
        return np.diff(series) if self.d == 1 else series

    def fit(self, series: np.ndarray) -> "ARIMA":
        array = validate_series(series, min_length=self.min_context + self.p + self.q + 8)
        z = self._difference(array)
        p, q = self.p, self.q

        if q == 0:
            lag = p
            rows = z.size - lag
            X = np.ones((rows, 1 + p))
            for i in range(p):
                X[:, 1 + i] = z[lag - 1 - i : z.size - 1 - i]
            y = z[lag:]
            beta = _ols(X, y)
            self.intercept_ = float(beta[0])
            self.ar_ = beta[1 : 1 + p]
            self.ma_ = np.zeros(0)
            residuals = y - X @ beta
        else:
            # Stage 1: long AR to estimate innovations.
            long_order = min(max(p + q + 3, 6), max(2, z.size // 4))
            rows = z.size - long_order
            X1 = np.ones((rows, 1 + long_order))
            for i in range(long_order):
                X1[:, 1 + i] = z[long_order - 1 - i : z.size - 1 - i]
            y1 = z[long_order:]
            beta1 = _ols(X1, y1)
            eps = np.zeros(z.size)
            eps[long_order:] = y1 - X1 @ beta1

            # Stage 2: regress on p AR lags and q innovation lags.
            lag = max(p, q) + long_order
            rows = z.size - lag
            X2 = np.ones((rows, 1 + p + q))
            for i in range(p):
                X2[:, 1 + i] = z[lag - 1 - i : z.size - 1 - i]
            for j in range(q):
                X2[:, 1 + p + j] = eps[lag - 1 - j : z.size - 1 - j]
            y2 = z[lag:]
            beta2 = _ols(X2, y2)
            self.intercept_ = float(beta2[0])
            self.ar_ = beta2[1 : 1 + p]
            self.ma_ = beta2[1 + p : 1 + p + q]
            residuals = y2 - X2 @ beta2

        self.sigma2_ = float(residuals @ residuals / max(residuals.size, 1))
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def _filter_innovations(self, z: np.ndarray) -> np.ndarray:
        """Innovations from running the fitted ARMA filter over ``z``."""
        p, q = self.p, self.q
        eps = np.zeros(z.size)
        for t in range(z.size):
            pred = self.intercept_
            for i in range(min(p, t)):
                pred += self.ar_[i] * z[t - 1 - i]
            for j in range(min(q, t)):
                pred += self.ma_[j] * eps[t - 1 - j]
            eps[t] = z[t] - pred
        return eps

    def _one_step_from(self, z: np.ndarray, eps: np.ndarray) -> float:
        """Forecast the next differenced value after index ``len(z)-1``."""
        pred = self.intercept_
        for i in range(min(self.p, z.size)):
            pred += self.ar_[i] * z[z.size - 1 - i]
        for j in range(min(self.q, eps.size)):
            pred += self.ma_[j] * eps[eps.size - 1 - j]
        return float(pred)

    def predict_next(self, history: np.ndarray) -> float:
        self._check_fitted()
        array = self._check_history(history)
        z = self._difference(array)
        eps = self._filter_innovations(z)
        diff_pred = self._one_step_from(z, eps)
        if self.d == 1:
            return float(array[-1] + diff_pred)
        return diff_pred

    def rolling_predictions(self, series: np.ndarray, start: int) -> np.ndarray:
        """One filtering pass over the whole series, then lag lookups."""
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        if start < self.min_context:
            raise DataValidationError(
                f"start={start} smaller than required context {self.min_context}"
            )
        z = self._difference(array)
        eps = self._filter_innovations(z)
        offset = self.d  # z index t corresponds to series index t + d
        out = np.empty(array.size - start)
        for pos, t in enumerate(range(start, array.size)):
            zt = t - offset  # number of z values available before series idx t
            pred = self.intercept_
            for i in range(min(self.p, zt)):
                pred += self.ar_[i] * z[zt - 1 - i]
            for j in range(min(self.q, zt)):
                pred += self.ma_[j] * eps[zt - 1 - j]
            if self.d == 1:
                pred = array[t - 1] + pred
            out[pos] = pred
        return out
