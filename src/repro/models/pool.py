"""Pool construction: the paper's 43 base models from 16 families.

:func:`build_pool` assembles the heterogeneous pool ``M`` used throughout
the paper ("Using different parameter settings for each approach, we
generate a pool of 43 single base models"). Three sizes are provided:

- ``"full"`` — 43 models across all 16 families (the paper's setup);
- ``"medium"`` — 16 models, one representative per family;
- ``"small"`` — 8 fast models (no sequence networks), for tests and
  quick experiments.

:class:`ForecasterPool` fits every member independently ("trained in
parallel and separately from each other to maximize diversity"), drops
members whose training fails, and produces the prequential prediction
matrix every combiner in this library consumes.
"""

from __future__ import annotations

import concurrent.futures
import time
import warnings
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models.arima import ARIMA
from repro.models.base import Forecaster
from repro.models.ets import Holt, HoltWinters, SimpleExpSmoothing
from repro.models.forest import RandomForestForecaster
from repro.models.gbm import GradientBoostingForecaster
from repro.models.gp import GaussianProcessForecaster
from repro.models.mars import MARSForecaster
from repro.models.neural import MLPForecaster
from repro.models.ppr import ProjectionPursuitForecaster
from repro.models.projection import PLSForecaster, PrincipalComponentForecaster
from repro.models.recurrent_forecasters import (
    BiLSTMForecaster,
    CNNLSTMForecaster,
    ConvLSTMForecaster,
    LSTMForecaster,
)
from repro.models.svr import SVRForecaster
from repro.models.tree import DecisionTreeForecaster
from repro.obs import OBS, get_logger
from repro.preprocessing.embedding import validate_series

_LOG = get_logger("pool")

if TYPE_CHECKING:  # pragma: no cover - typing only. The runtime import
    # is deferred at runtime: repro.runtime.guards subclasses Forecaster,
    # so a module-scope import here would make models <-> runtime circular.
    from repro.runtime import PoolHealth, RuntimeGuardConfig
    from repro.runtime.executor import ExecutorConfig


# ----------------------------------------------------------------------
# Worker tasks for the parallel executor. Module-level (not closures) so
# the process backend can pickle them; each returns its own wall-clock
# compute time so the pool can populate PoolHealth.timings() without
# counting scheduling/pickling overhead.
# ----------------------------------------------------------------------
def _fit_member_task(member: Forecaster, array: np.ndarray):
    """Fit one member; returns ``(member, error_or_None, elapsed)``.

    Failures are *returned*, not raised, mirroring the drop-on-failure
    semantics of the serial fit loop (the caller records ``dropped_`` in
    member order).
    """
    t0 = time.perf_counter()
    try:
        member.fit(array)
        return member, None, time.perf_counter() - t0
    except Exception as exc:  # noqa: BLE001 - pool must stay robust
        return member, (type(exc).__name__, str(exc)), time.perf_counter() - t0


def _rolling_member_task(
    member: Forecaster, array: np.ndarray, start: int, guarded: bool
):
    """One prequential column; returns ``(member, column, mask, elapsed)``.

    Guarded members degrade internally and never raise; unguarded members
    propagate their exception (fail-fast, matching the serial path — the
    ordered result gather re-raises the first failure in member order).
    """
    t0 = time.perf_counter()
    if guarded:
        column, mask = member.guarded_rolling(array, start)
    else:
        column = np.asarray(
            member.rolling_predictions(array, start), dtype=np.float64
        )
        mask = None
    return member, column, mask, time.perf_counter() - t0


def _one_step_task(member: Forecaster, history: np.ndarray, guarded: bool):
    """One online one-step query; returns ``(value, healthy, elapsed)``."""
    t0 = time.perf_counter()
    if guarded:
        value, healthy = member.guarded_predict(history)
    else:
        value, healthy = float(member.predict_next(history)), True
    return value, healthy, time.perf_counter() - t0


def build_pool(
    size: str = "full",
    embedding_dimension: int = 5,
    seasonal_period: int = 24,
    seed: int = 0,
    neural_epochs: int = 60,
) -> List[Forecaster]:
    """Build the heterogeneous base-model pool.

    Parameters
    ----------
    size:
        ``"full"`` (43 models), ``"medium"`` (16), or ``"small"`` (8).
    embedding_dimension:
        k for the window regressors (paper: 5).
    seasonal_period:
        Period handed to Holt-Winters (cadence-dependent).
    seed:
        Base seed; individual stochastic models get distinct offsets.
    neural_epochs:
        Training epochs for the neural members (scale knob for runtime).
    """
    k = embedding_dimension
    if size == "small":
        return [
            ARIMA(2, 0, 0),
            ARIMA(1, 1, 1),
            SimpleExpSmoothing(),
            Holt(),
            DecisionTreeForecaster(k, max_depth=4),
            RandomForestForecaster(k, n_estimators=20, max_depth=6, seed=seed),
            GradientBoostingForecaster(k, n_estimators=40, max_depth=2, seed=seed),
            PLSForecaster(k, n_components=min(2, k)),
        ]
    if size == "medium":
        return [
            ARIMA(2, 0, 1),
            Holt(),
            GradientBoostingForecaster(k, n_estimators=60, max_depth=3, seed=seed),
            GaussianProcessForecaster(k, length_scale=1.5),
            SVRForecaster(k, kernel="rbf", C=1.0, epsilon=0.1),
            RandomForestForecaster(k, n_estimators=40, seed=seed),
            ProjectionPursuitForecaster(k, n_terms=2, seed=seed),
            MARSForecaster(k, max_terms=8),
            PrincipalComponentForecaster(k, n_components=min(3, k)),
            DecisionTreeForecaster(k, max_depth=5),
            PLSForecaster(k, n_components=min(2, k)),
            MLPForecaster(k, hidden=(16,), epochs=max(100, neural_epochs), seed=seed),
            LSTMForecaster(hidden=8, epochs=neural_epochs, seed=seed),
            BiLSTMForecaster(hidden=6, epochs=neural_epochs, seed=seed),
            CNNLSTMForecaster(hidden=8, epochs=neural_epochs, seed=seed),
            ConvLSTMForecaster(epochs=neural_epochs, seed=seed),
        ]
    if size != "full":
        raise ConfigurationError(
            f"pool size must be 'small', 'medium' or 'full', got {size!r}"
        )

    mlp_epochs = max(120, neural_epochs)
    models: List[Forecaster] = [
        # ARIMA family — 5 configurations.
        ARIMA(1, 0, 0),
        ARIMA(2, 0, 1),
        ARIMA(1, 1, 1),
        ARIMA(2, 1, 2),
        ARIMA(5, 0, 0),
        # ETS family — 3.
        SimpleExpSmoothing(),
        Holt(),
        HoltWinters(period=seasonal_period),
        # GBM family — 4.
        GradientBoostingForecaster(k, n_estimators=60, max_depth=2,
                                   learning_rate=0.1, seed=seed),
        GradientBoostingForecaster(k, n_estimators=100, max_depth=3,
                                   learning_rate=0.1, seed=seed + 1),
        GradientBoostingForecaster(k, n_estimators=60, max_depth=3,
                                   learning_rate=0.05, seed=seed + 2),
        GradientBoostingForecaster(k, n_estimators=80, max_depth=2,
                                   learning_rate=0.2, subsample=0.8, seed=seed + 3),
        # GP family — 2.
        GaussianProcessForecaster(k, length_scale=1.0, noise=0.1),
        GaussianProcessForecaster(k, length_scale=3.0, noise=0.05),
        # SVR family — 3.
        SVRForecaster(k, kernel="rbf", C=1.0, epsilon=0.1),
        SVRForecaster(k, kernel="rbf", C=10.0, epsilon=0.05),
        SVRForecaster(k, kernel="linear", C=1.0, epsilon=0.1),
        # RFR family — 3.
        RandomForestForecaster(k, n_estimators=30, max_depth=6, seed=seed),
        RandomForestForecaster(k, n_estimators=80, seed=seed + 1),
        RandomForestForecaster(k, n_estimators=50, max_depth=10,
                               max_features=max(1, k - 1), seed=seed + 2),
        # PPR family — 2.
        ProjectionPursuitForecaster(k, n_terms=2, seed=seed),
        ProjectionPursuitForecaster(k, n_terms=4, seed=seed + 1),
        # MARS family — 2.
        MARSForecaster(k, max_terms=6),
        MARSForecaster(k, max_terms=12),
        # PCMR family — 2.
        PrincipalComponentForecaster(k, n_components=min(2, k)),
        PrincipalComponentForecaster(k, n_components=min(4, k)),
        # DT family — 3.
        DecisionTreeForecaster(k, max_depth=3),
        DecisionTreeForecaster(k, max_depth=6),
        DecisionTreeForecaster(k, max_depth=None, min_samples_leaf=4),
        # PLS family — 2.
        PLSForecaster(k, n_components=min(2, k)),
        PLSForecaster(k, n_components=min(3, k)),
        # MLP family — 4.
        MLPForecaster(k, hidden=(8,), epochs=mlp_epochs, seed=seed),
        MLPForecaster(k, hidden=(16,), epochs=mlp_epochs, seed=seed + 1),
        MLPForecaster(k, hidden=(32,), epochs=mlp_epochs, seed=seed + 2),
        MLPForecaster(k, hidden=(16, 8), epochs=mlp_epochs,
                      activation="tanh", seed=seed + 3),
        # LSTM family — 3.
        LSTMForecaster(window=10, hidden=8, epochs=neural_epochs, seed=seed),
        LSTMForecaster(window=10, hidden=16, epochs=neural_epochs, seed=seed + 1),
        LSTMForecaster(window=16, hidden=8, epochs=neural_epochs, seed=seed + 2),
        # Bi-LSTM family — 2.
        BiLSTMForecaster(window=10, hidden=6, epochs=neural_epochs, seed=seed),
        BiLSTMForecaster(window=10, hidden=10, epochs=neural_epochs, seed=seed + 1),
        # CNN-LSTM family — 2.
        CNNLSTMForecaster(window=12, filters=8, hidden=8,
                          epochs=neural_epochs, seed=seed),
        CNNLSTMForecaster(window=12, filters=4, kernel=5, hidden=6,
                          epochs=neural_epochs, seed=seed + 1),
        # Conv-LSTM family — 1.
        ConvLSTMForecaster(frame_width=4, n_frames=3, epochs=neural_epochs, seed=seed),
    ]
    return models


def build_pool_for_series(
    series: np.ndarray,
    size: str = "full",
    embedding_dimension: int = 5,
    seed: int = 0,
    neural_epochs: int = 60,
) -> List[Forecaster]:
    """Build a pool auto-configured from the series' diagnostics.

    Detects the dominant seasonal period (periodogram) and hands it to
    the Holt-Winters member; a series with no clear season gets the
    default hourly period (whose HW member will then simply rank low and
    receive negligible weight).
    """
    from repro.analysis.diagnostics import detect_period

    array = validate_series(series, min_length=50)
    period = detect_period(array)
    if period < 2:
        period = 24
    # Guard: HoltWinters needs two full seasons inside the series.
    if 2 * period > array.size // 2:
        period = max(2, array.size // 8)
    return build_pool(
        size=size,
        embedding_dimension=embedding_dimension,
        seasonal_period=period,
        seed=seed,
        neural_epochs=neural_epochs,
    )


class ForecasterPool:
    """The trained pool ``M`` plus its prequential prediction matrix.

    Parameters
    ----------
    models:
        Base forecasters (unfitted). Members whose ``fit`` raises are
        dropped with a warning, keeping the pool robust to pathological
        series (e.g. Holt-Winters on a series shorter than two periods);
        the drops are recorded in :attr:`dropped_`.
    guard_config:
        When given, every member is wrapped in a
        :class:`~repro.runtime.GuardedForecaster` (timeout / retry /
        circuit breaker) reporting into a shared
        :class:`~repro.runtime.PoolHealth` registry, and the prediction
        APIs degrade gracefully (fallback-filled columns plus a healthy
        mask) instead of letting one member's predict-time failure kill
        the whole forecast. ``None`` (default) keeps the original
        fail-fast behaviour with zero overhead.
    health:
        Existing registry to report into (used by :meth:`subset` so a
        pruned pool shares its parent's health history).
    executor:
        Backend for the pool's per-member fan-outs: ``"serial"``
        (default; bit-identical to the pre-executor behaviour),
        ``"thread"``, ``"process"``, or a
        :class:`~repro.runtime.executor.ExecutorConfig`. Worker results
        are merged deterministically in member order, so predictions,
        masks, and health events are identical under every backend and
        worker count. The online one-step path
        (:meth:`predict_next_with_mask`) always uses threads — never
        processes — to keep per-step latency free of pickling costs.
    n_jobs:
        Worker count for the parallel backends (``None`` = all cores).

    Attributes
    ----------
    dropped_:
        ``(name, exception_type, message)`` tuples for every member whose
        ``fit`` failed (set by :meth:`fit`).
    """

    def __init__(
        self,
        models: Sequence[Forecaster],
        guard_config: Optional["RuntimeGuardConfig"] = None,
        health: Optional["PoolHealth"] = None,
        executor: Union["ExecutorConfig", str, None] = None,
        n_jobs: Optional[int] = None,
    ):
        from repro.runtime import GuardedForecaster, PoolHealth
        from repro.runtime.executor import coerce_executor

        if not models:
            raise ConfigurationError("pool must contain at least one model")
        self._guard_config = guard_config
        self._executor = coerce_executor(executor, n_jobs)
        self._online_pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._health = health if health is not None else PoolHealth()
        members = list(models)
        if guard_config is not None:
            guard_config.validate()
            members = [
                m if isinstance(m, GuardedForecaster)
                else GuardedForecaster(m, guard_config, self._health)
                for m in members
            ]
        self._models: List[Forecaster] = members
        self._fitted = False
        self.dropped_: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    @property
    def models(self) -> List[Forecaster]:
        return list(self._models)

    @property
    def names(self) -> List[str]:
        return [m.name for m in self._models]

    def __len__(self) -> int:
        return len(self._models)

    @property
    def guarded(self) -> bool:
        """Whether members are wrapped in runtime guards."""
        return self._guard_config is not None

    @property
    def executor_config(self) -> "ExecutorConfig":
        """The pool's execution-engine configuration."""
        return self._executor

    def health(self) -> "PoolHealth":
        """The pool's health registry.

        Guard events require ``guard_config``; per-member timing
        telemetry (:meth:`~repro.runtime.PoolHealth.timings`) is recorded
        for every pool.
        """
        return self._health

    # ------------------------------------------------------------------
    # Executor plumbing
    # ------------------------------------------------------------------
    def _use_parallel(self) -> bool:
        return self._executor.parallel and len(self._models) > 1

    def _scatter_scratch_health(self) -> None:
        """Give every guarded member a private scratch registry.

        Workers record into their scratch; :meth:`_gather_member` merges
        the scratches back into the shared registry in member order, so
        the shared event logs are identical to a serial run.
        """
        from repro.runtime import PoolHealth

        for member in self._models:
            member.swap_health(PoolHealth())

    def _restore_shared_health(self) -> None:
        for member in self._models:
            member.swap_health(self._health)

    def _gather_member(self, index: int, member: Forecaster) -> None:
        """Adopt one worker result (in member order).

        Under the process backend ``member`` is a fitted/updated *copy*
        (carrying its breaker state and scratch registry); under the
        thread backend it is the original object. Either way the scratch
        registry is replayed into the shared one and the member is
        re-pointed at it. The identity check keeps a member that already
        reports into the shared registry from being merged twice.
        """
        if self._guard_config is not None and member.health is not self._health:
            self._health.merge_from(member.health)
            member.swap_health(self._health)
        self._models[index] = member

    def _online_executor(self) -> concurrent.futures.ThreadPoolExecutor:
        """Cached thread pool for the latency-sensitive online path."""
        if self._online_pool is None:
            self._online_pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=min(self._executor.resolved_jobs(), len(self._models)),
                thread_name_prefix="repro-pool",
            )
        return self._online_pool

    def close(self) -> None:
        """Release the cached online thread pool (idempotent)."""
        if self._online_pool is not None:
            self._online_pool.shutdown(wait=False)
            self._online_pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:  # noqa: BLE001 - never raise from a finaliser
            pass

    # ------------------------------------------------------------------
    def fit(self, train_series: np.ndarray) -> "ForecasterPool":
        """Fit all members on the training series; drop failing members.

        Dropped members are recorded in :attr:`dropped_` as
        ``(name, exception_type, message)`` tuples. Under a parallel
        executor the members train concurrently; results (survivors,
        drops, health events, warnings) are merged in member order so the
        outcome is identical to a serial fit.
        """
        array = validate_series(train_series, min_length=10)
        survivors: List[Forecaster] = []
        self.dropped_ = []
        parallel = self._use_parallel()
        with OBS.span("pool.fit"):
            if parallel:
                outcomes = self._parallel_fit(array)
            else:
                outcomes = [
                    _fit_member_task(model, array) for model in self._models
                ]
            for i, (member, error, elapsed) in enumerate(outcomes):
                if parallel:
                    self._gather_member(i, member)
                self._health.record_timing(member.name, "fit", elapsed)
                if error is None:
                    survivors.append(member)
                else:
                    self.dropped_.append((member.name, error[0], error[1]))
                    warnings.warn(
                        f"dropping pool member {member.name!r} "
                        f"({error[0]}): {error[1]}",
                        stacklevel=2,
                    )
        if not survivors:
            raise DataValidationError("every pool member failed to fit")
        self._models = survivors
        self._fitted = True
        _LOG.debug("pool fit: %d survivors, %d dropped (%s backend)",
                   len(survivors), len(self.dropped_), self._executor.backend)
        if OBS.enabled:
            self._health.publish_metrics(OBS.registry)
        return self

    def _parallel_fit(self, array: np.ndarray) -> list:
        from repro.runtime.executor import run_ordered

        if self._guard_config is not None:
            self._scatter_scratch_health()
        try:
            return run_ordered(
                _fit_member_task,
                [(member, array) for member in self._models],
                self._executor,
                task_names=[member.name for member in self._models],
            )
        except BaseException:
            # Engine-level failure: no outcomes will be gathered, so make
            # sure no member is left reporting into a scratch registry.
            if self._guard_config is not None:
                self._restore_shared_health()
            raise

    def prediction_matrix(self, series: np.ndarray, start: int) -> np.ndarray:
        """One-step predictions of every member for ``t in [start, n)``.

        Returns shape ``(n - start, m)``; column ``i`` belongs to
        ``self.models[i]``. ``series`` must contain the training prefix so
        each model sees the true history (prequential protocol).
        """
        matrix, _ = self.prediction_matrix_with_mask(series, start)
        return matrix

    def prediction_matrix_with_mask(
        self, series: np.ndarray, start: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Prediction matrix plus its per-cell health mask.

        Returns ``(matrix, mask)`` of equal shape ``(n - start, m)``.
        ``mask[t, i]`` is ``True`` where the value is a genuine member
        prediction and ``False`` where the runtime substituted a fallback
        (member failed or quarantined at that step). Unguarded pools
        compute the matrix exactly as before and return an all-``True``
        mask; a member failure there propagates (fail-fast).
        """
        if not self._fitted:
            raise DataValidationError("pool must be fitted before predicting")
        guarded = self._guard_config is not None
        with OBS.span("pool.prediction_matrix"):
            if self._use_parallel():
                outcomes = self._parallel_rolling(series, start, guarded)
            else:
                array = (
                    np.asarray(series, dtype=np.float64) if guarded else series
                )
                outcomes = [
                    _rolling_member_task(member, array, start, guarded)
                    for member in self._models
                ]
            columns, masks = [], []
            parallel = self._use_parallel()
            for i, (member, column, mask, elapsed) in enumerate(outcomes):
                if parallel:
                    self._gather_member(i, member)
                self._health.record_timing(member.name, "predict", elapsed)
                columns.append(column)
                masks.append(
                    mask if mask is not None
                    else np.ones(column.shape, dtype=bool)
                )
        if OBS.enabled:
            self._health.publish_metrics(OBS.registry)
        return np.column_stack(columns), np.column_stack(masks)

    def _parallel_rolling(self, series: np.ndarray, start: int, guarded: bool):
        from repro.runtime.executor import run_ordered

        array = np.asarray(series, dtype=np.float64)
        if guarded:
            self._scatter_scratch_health()
        try:
            return run_ordered(
                _rolling_member_task,
                [(member, array, start, guarded) for member in self._models],
                self._executor,
                task_names=[member.name for member in self._models],
            )
        except BaseException:
            # Either an unguarded member failed fast (matching serial
            # semantics: the first failure in member order is re-raised)
            # or the engine itself broke; leave no scratch registries.
            if guarded:
                self._restore_shared_health()
            raise

    def predict_next(self, history: np.ndarray) -> np.ndarray:
        """Vector of one-step forecasts (one per member)."""
        values, _ = self.predict_next_with_mask(history)
        return values

    def predict_next_with_mask(
        self, history: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One-step forecasts plus the per-member health mask.

        Guarded pools substitute the configured fallback for failing or
        quarantined members and flag them ``False`` in the mask;
        unguarded pools behave exactly as before (all-``True`` mask,
        failures propagate).
        """
        if not self._fitted:
            raise DataValidationError("pool must be fitted before predicting")
        if self._use_parallel():
            return self._parallel_predict_next(history)
        if self._guard_config is None:
            values = np.array([m.predict_next(history) for m in self._models])
            return values, np.ones(values.shape, dtype=bool)
        history = np.asarray(history, dtype=np.float64)
        values = np.empty(len(self._models))
        mask = np.zeros(len(self._models), dtype=bool)
        for i, member in enumerate(self._models):
            values[i], mask[i] = member.guarded_predict(history)
        return values, mask

    def predict_next_batch_with_mask(
        self, histories
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One-step forecasts for N tenant histories in one sweep.

        Returns ``(matrix, mask)`` of shape ``(len(histories), m)``;
        row ``i`` is bit-identical to ``predict_next_with_mask(
        histories[i])``. Unguarded serial pools take the vectorised
        per-member path (each member sees all histories at once);
        guarded or parallel pools fall back to looping the single-step
        path so guard bookkeeping and executor semantics stay exactly
        as they were.
        """
        if not self._fitted:
            raise DataValidationError("pool must be fitted before predicting")
        if self._guard_config is not None or self._use_parallel():
            values = np.empty((len(histories), len(self._models)))
            mask = np.empty((len(histories), len(self._models)), dtype=bool)
            for i, history in enumerate(histories):
                values[i], mask[i] = self.predict_next_with_mask(history)
            return values, mask
        matrix = np.column_stack(
            [member.predict_next_batch(histories) for member in self._models]
        )
        return matrix, np.ones(matrix.shape, dtype=bool)

    def _parallel_predict_next(
        self, history: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Online fan-out over the cached *thread* pool.

        Regardless of the configured backend, the one-step path never
        crosses a process boundary: per-step pickling of models would
        dominate the latency budget the online phase exists to protect.
        Guarded members record into scratch registries that are merged in
        member order after every step, keeping the shared event log
        identical to a serial run.
        """
        guarded = self._guard_config is not None
        history = np.asarray(history, dtype=np.float64)
        pool = self._online_executor()
        if guarded:
            self._scatter_scratch_health()
        instrumented = OBS.enabled
        if instrumented:
            from repro.runtime.executor import record_task_timing, timed_call

            futures = [
                pool.submit(
                    timed_call, _one_step_task,
                    (member, history, guarded), time.perf_counter(),
                )
                for member in self._models
            ]
        else:
            futures = [
                pool.submit(_one_step_task, member, history, guarded)
                for member in self._models
            ]
        try:
            results = [future.result() for future in futures]
        except BaseException:
            if guarded:
                self._restore_shared_health()
            raise
        values = np.empty(len(self._models))
        mask = np.zeros(len(self._models), dtype=bool)
        for i, member in enumerate(list(self._models)):
            self._gather_member(i, member)
            if instrumented:
                (values[i], mask[i], elapsed), wait, work = results[i]
                record_task_timing("thread", member.name, wait, work)
            else:
                values[i], mask[i], elapsed = results[i]
            self._health.record_timing(member.name, "predict", elapsed)
        return values, mask

    def max_min_context(self) -> int:
        """Largest context any member requires (lower bound for ``start``)."""
        return max(m.min_context for m in self._models)

    def subset(self, indices) -> "ForecasterPool":
        """A new pool holding only the members at ``indices``.

        The members are shared (not copied) and keep their fitted state;
        used by the pruning step (paper §III-B future work).
        """
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            raise ConfigurationError("subset must keep at least one member")
        if indices.min() < 0 or indices.max() >= len(self._models):
            raise ConfigurationError(
                f"subset indices out of range for pool of {len(self._models)}"
            )
        pruned = ForecasterPool(
            [self._models[i] for i in indices],
            guard_config=self._guard_config,
            health=self._health,
            executor=self._executor,
        )
        pruned._fitted = self._fitted
        return pruned
