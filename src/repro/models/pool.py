"""Pool construction: the paper's 43 base models from 16 families.

:func:`build_pool` assembles the heterogeneous pool ``M`` used throughout
the paper ("Using different parameter settings for each approach, we
generate a pool of 43 single base models"). Three sizes are provided:

- ``"full"`` — 43 models across all 16 families (the paper's setup);
- ``"medium"`` — 16 models, one representative per family;
- ``"small"`` — 8 fast models (no sequence networks), for tests and
  quick experiments.

:class:`ForecasterPool` fits every member independently ("trained in
parallel and separately from each other to maximize diversity"), drops
members whose training fails, and produces the prequential prediction
matrix every combiner in this library consumes.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models.arima import ARIMA
from repro.models.base import Forecaster
from repro.models.ets import Holt, HoltWinters, SimpleExpSmoothing
from repro.models.forest import RandomForestForecaster
from repro.models.gbm import GradientBoostingForecaster
from repro.models.gp import GaussianProcessForecaster
from repro.models.mars import MARSForecaster
from repro.models.neural import MLPForecaster
from repro.models.ppr import ProjectionPursuitForecaster
from repro.models.projection import PLSForecaster, PrincipalComponentForecaster
from repro.models.recurrent_forecasters import (
    BiLSTMForecaster,
    CNNLSTMForecaster,
    ConvLSTMForecaster,
    LSTMForecaster,
)
from repro.models.svr import SVRForecaster
from repro.models.tree import DecisionTreeForecaster
from repro.preprocessing.embedding import validate_series

if TYPE_CHECKING:  # pragma: no cover - typing only. The runtime import
    # is deferred at runtime: repro.runtime.guards subclasses Forecaster,
    # so a module-scope import here would make models <-> runtime circular.
    from repro.runtime import PoolHealth, RuntimeGuardConfig


def build_pool(
    size: str = "full",
    embedding_dimension: int = 5,
    seasonal_period: int = 24,
    seed: int = 0,
    neural_epochs: int = 60,
) -> List[Forecaster]:
    """Build the heterogeneous base-model pool.

    Parameters
    ----------
    size:
        ``"full"`` (43 models), ``"medium"`` (16), or ``"small"`` (8).
    embedding_dimension:
        k for the window regressors (paper: 5).
    seasonal_period:
        Period handed to Holt-Winters (cadence-dependent).
    seed:
        Base seed; individual stochastic models get distinct offsets.
    neural_epochs:
        Training epochs for the neural members (scale knob for runtime).
    """
    k = embedding_dimension
    if size == "small":
        return [
            ARIMA(2, 0, 0),
            ARIMA(1, 1, 1),
            SimpleExpSmoothing(),
            Holt(),
            DecisionTreeForecaster(k, max_depth=4),
            RandomForestForecaster(k, n_estimators=20, max_depth=6, seed=seed),
            GradientBoostingForecaster(k, n_estimators=40, max_depth=2, seed=seed),
            PLSForecaster(k, n_components=min(2, k)),
        ]
    if size == "medium":
        return [
            ARIMA(2, 0, 1),
            Holt(),
            GradientBoostingForecaster(k, n_estimators=60, max_depth=3, seed=seed),
            GaussianProcessForecaster(k, length_scale=1.5),
            SVRForecaster(k, kernel="rbf", C=1.0, epsilon=0.1),
            RandomForestForecaster(k, n_estimators=40, seed=seed),
            ProjectionPursuitForecaster(k, n_terms=2, seed=seed),
            MARSForecaster(k, max_terms=8),
            PrincipalComponentForecaster(k, n_components=min(3, k)),
            DecisionTreeForecaster(k, max_depth=5),
            PLSForecaster(k, n_components=min(2, k)),
            MLPForecaster(k, hidden=(16,), epochs=max(100, neural_epochs), seed=seed),
            LSTMForecaster(hidden=8, epochs=neural_epochs, seed=seed),
            BiLSTMForecaster(hidden=6, epochs=neural_epochs, seed=seed),
            CNNLSTMForecaster(hidden=8, epochs=neural_epochs, seed=seed),
            ConvLSTMForecaster(epochs=neural_epochs, seed=seed),
        ]
    if size != "full":
        raise ConfigurationError(
            f"pool size must be 'small', 'medium' or 'full', got {size!r}"
        )

    mlp_epochs = max(120, neural_epochs)
    models: List[Forecaster] = [
        # ARIMA family — 5 configurations.
        ARIMA(1, 0, 0),
        ARIMA(2, 0, 1),
        ARIMA(1, 1, 1),
        ARIMA(2, 1, 2),
        ARIMA(5, 0, 0),
        # ETS family — 3.
        SimpleExpSmoothing(),
        Holt(),
        HoltWinters(period=seasonal_period),
        # GBM family — 4.
        GradientBoostingForecaster(k, n_estimators=60, max_depth=2,
                                   learning_rate=0.1, seed=seed),
        GradientBoostingForecaster(k, n_estimators=100, max_depth=3,
                                   learning_rate=0.1, seed=seed + 1),
        GradientBoostingForecaster(k, n_estimators=60, max_depth=3,
                                   learning_rate=0.05, seed=seed + 2),
        GradientBoostingForecaster(k, n_estimators=80, max_depth=2,
                                   learning_rate=0.2, subsample=0.8, seed=seed + 3),
        # GP family — 2.
        GaussianProcessForecaster(k, length_scale=1.0, noise=0.1),
        GaussianProcessForecaster(k, length_scale=3.0, noise=0.05),
        # SVR family — 3.
        SVRForecaster(k, kernel="rbf", C=1.0, epsilon=0.1),
        SVRForecaster(k, kernel="rbf", C=10.0, epsilon=0.05),
        SVRForecaster(k, kernel="linear", C=1.0, epsilon=0.1),
        # RFR family — 3.
        RandomForestForecaster(k, n_estimators=30, max_depth=6, seed=seed),
        RandomForestForecaster(k, n_estimators=80, seed=seed + 1),
        RandomForestForecaster(k, n_estimators=50, max_depth=10,
                               max_features=max(1, k - 1), seed=seed + 2),
        # PPR family — 2.
        ProjectionPursuitForecaster(k, n_terms=2, seed=seed),
        ProjectionPursuitForecaster(k, n_terms=4, seed=seed + 1),
        # MARS family — 2.
        MARSForecaster(k, max_terms=6),
        MARSForecaster(k, max_terms=12),
        # PCMR family — 2.
        PrincipalComponentForecaster(k, n_components=min(2, k)),
        PrincipalComponentForecaster(k, n_components=min(4, k)),
        # DT family — 3.
        DecisionTreeForecaster(k, max_depth=3),
        DecisionTreeForecaster(k, max_depth=6),
        DecisionTreeForecaster(k, max_depth=None, min_samples_leaf=4),
        # PLS family — 2.
        PLSForecaster(k, n_components=min(2, k)),
        PLSForecaster(k, n_components=min(3, k)),
        # MLP family — 4.
        MLPForecaster(k, hidden=(8,), epochs=mlp_epochs, seed=seed),
        MLPForecaster(k, hidden=(16,), epochs=mlp_epochs, seed=seed + 1),
        MLPForecaster(k, hidden=(32,), epochs=mlp_epochs, seed=seed + 2),
        MLPForecaster(k, hidden=(16, 8), epochs=mlp_epochs,
                      activation="tanh", seed=seed + 3),
        # LSTM family — 3.
        LSTMForecaster(window=10, hidden=8, epochs=neural_epochs, seed=seed),
        LSTMForecaster(window=10, hidden=16, epochs=neural_epochs, seed=seed + 1),
        LSTMForecaster(window=16, hidden=8, epochs=neural_epochs, seed=seed + 2),
        # Bi-LSTM family — 2.
        BiLSTMForecaster(window=10, hidden=6, epochs=neural_epochs, seed=seed),
        BiLSTMForecaster(window=10, hidden=10, epochs=neural_epochs, seed=seed + 1),
        # CNN-LSTM family — 2.
        CNNLSTMForecaster(window=12, filters=8, hidden=8,
                          epochs=neural_epochs, seed=seed),
        CNNLSTMForecaster(window=12, filters=4, kernel=5, hidden=6,
                          epochs=neural_epochs, seed=seed + 1),
        # Conv-LSTM family — 1.
        ConvLSTMForecaster(frame_width=4, n_frames=3, epochs=neural_epochs, seed=seed),
    ]
    return models


def build_pool_for_series(
    series: np.ndarray,
    size: str = "full",
    embedding_dimension: int = 5,
    seed: int = 0,
    neural_epochs: int = 60,
) -> List[Forecaster]:
    """Build a pool auto-configured from the series' diagnostics.

    Detects the dominant seasonal period (periodogram) and hands it to
    the Holt-Winters member; a series with no clear season gets the
    default hourly period (whose HW member will then simply rank low and
    receive negligible weight).
    """
    from repro.analysis.diagnostics import detect_period

    array = validate_series(series, min_length=50)
    period = detect_period(array)
    if period < 2:
        period = 24
    # Guard: HoltWinters needs two full seasons inside the series.
    if 2 * period > array.size // 2:
        period = max(2, array.size // 8)
    return build_pool(
        size=size,
        embedding_dimension=embedding_dimension,
        seasonal_period=period,
        seed=seed,
        neural_epochs=neural_epochs,
    )


class ForecasterPool:
    """The trained pool ``M`` plus its prequential prediction matrix.

    Parameters
    ----------
    models:
        Base forecasters (unfitted). Members whose ``fit`` raises are
        dropped with a warning, keeping the pool robust to pathological
        series (e.g. Holt-Winters on a series shorter than two periods);
        the drops are recorded in :attr:`dropped_`.
    guard_config:
        When given, every member is wrapped in a
        :class:`~repro.runtime.GuardedForecaster` (timeout / retry /
        circuit breaker) reporting into a shared
        :class:`~repro.runtime.PoolHealth` registry, and the prediction
        APIs degrade gracefully (fallback-filled columns plus a healthy
        mask) instead of letting one member's predict-time failure kill
        the whole forecast. ``None`` (default) keeps the original
        fail-fast behaviour with zero overhead.
    health:
        Existing registry to report into (used by :meth:`subset` so a
        pruned pool shares its parent's health history).

    Attributes
    ----------
    dropped_:
        ``(name, exception_type, message)`` tuples for every member whose
        ``fit`` failed (set by :meth:`fit`).
    """

    def __init__(
        self,
        models: Sequence[Forecaster],
        guard_config: Optional["RuntimeGuardConfig"] = None,
        health: Optional["PoolHealth"] = None,
    ):
        from repro.runtime import GuardedForecaster, PoolHealth

        if not models:
            raise ConfigurationError("pool must contain at least one model")
        self._guard_config = guard_config
        self._health = health if health is not None else PoolHealth()
        members = list(models)
        if guard_config is not None:
            guard_config.validate()
            members = [
                m if isinstance(m, GuardedForecaster)
                else GuardedForecaster(m, guard_config, self._health)
                for m in members
            ]
        self._models: List[Forecaster] = members
        self._fitted = False
        self.dropped_: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    @property
    def models(self) -> List[Forecaster]:
        return list(self._models)

    @property
    def names(self) -> List[str]:
        return [m.name for m in self._models]

    def __len__(self) -> int:
        return len(self._models)

    @property
    def guarded(self) -> bool:
        """Whether members are wrapped in runtime guards."""
        return self._guard_config is not None

    def health(self) -> "PoolHealth":
        """The pool's health registry (empty when unguarded)."""
        return self._health

    # ------------------------------------------------------------------
    def fit(self, train_series: np.ndarray) -> "ForecasterPool":
        """Fit all members on the training series; drop failing members.

        Dropped members are recorded in :attr:`dropped_` as
        ``(name, exception_type, message)`` tuples.
        """
        array = validate_series(train_series, min_length=10)
        survivors: List[Forecaster] = []
        self.dropped_ = []
        for model in self._models:
            try:
                model.fit(array)
                survivors.append(model)
            except Exception as exc:  # noqa: BLE001 - pool must stay robust
                self.dropped_.append((model.name, type(exc).__name__, str(exc)))
                warnings.warn(
                    f"dropping pool member {model.name!r} "
                    f"({type(exc).__name__}): {exc}",
                    stacklevel=2,
                )
        if not survivors:
            raise DataValidationError("every pool member failed to fit")
        self._models = survivors
        self._fitted = True
        return self

    def prediction_matrix(self, series: np.ndarray, start: int) -> np.ndarray:
        """One-step predictions of every member for ``t in [start, n)``.

        Returns shape ``(n - start, m)``; column ``i`` belongs to
        ``self.models[i]``. ``series`` must contain the training prefix so
        each model sees the true history (prequential protocol).
        """
        matrix, _ = self.prediction_matrix_with_mask(series, start)
        return matrix

    def prediction_matrix_with_mask(
        self, series: np.ndarray, start: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Prediction matrix plus its per-cell health mask.

        Returns ``(matrix, mask)`` of equal shape ``(n - start, m)``.
        ``mask[t, i]`` is ``True`` where the value is a genuine member
        prediction and ``False`` where the runtime substituted a fallback
        (member failed or quarantined at that step). Unguarded pools
        compute the matrix exactly as before and return an all-``True``
        mask; a member failure there propagates (fail-fast).
        """
        if not self._fitted:
            raise DataValidationError("pool must be fitted before predicting")
        if self._guard_config is None:
            columns = [m.rolling_predictions(series, start) for m in self._models]
            matrix = np.column_stack(columns)
            return matrix, np.ones(matrix.shape, dtype=bool)
        columns, masks = [], []
        for member in self._models:
            column, mask = member.guarded_rolling(
                np.asarray(series, dtype=np.float64), start
            )
            columns.append(column)
            masks.append(mask)
        return np.column_stack(columns), np.column_stack(masks)

    def predict_next(self, history: np.ndarray) -> np.ndarray:
        """Vector of one-step forecasts (one per member)."""
        values, _ = self.predict_next_with_mask(history)
        return values

    def predict_next_with_mask(
        self, history: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One-step forecasts plus the per-member health mask.

        Guarded pools substitute the configured fallback for failing or
        quarantined members and flag them ``False`` in the mask;
        unguarded pools behave exactly as before (all-``True`` mask,
        failures propagate).
        """
        if not self._fitted:
            raise DataValidationError("pool must be fitted before predicting")
        if self._guard_config is None:
            values = np.array([m.predict_next(history) for m in self._models])
            return values, np.ones(values.shape, dtype=bool)
        history = np.asarray(history, dtype=np.float64)
        values = np.empty(len(self._models))
        mask = np.zeros(len(self._models), dtype=bool)
        for i, member in enumerate(self._models):
            values[i], mask[i] = member.guarded_predict(history)
        return values, mask

    def max_min_context(self) -> int:
        """Largest context any member requires (lower bound for ``start``)."""
        return max(m.min_context for m in self._models)

    def subset(self, indices) -> "ForecasterPool":
        """A new pool holding only the members at ``indices``.

        The members are shared (not copied) and keep their fitted state;
        used by the pruning step (paper §III-B future work).
        """
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            raise ConfigurationError("subset must keep at least one member")
        if indices.min() < 0 or indices.max() >= len(self._models):
            raise ConfigurationError(
                f"subset indices out of range for pool of {len(self._models)}"
            )
        pruned = ForecasterPool(
            [self._models[i] for i in indices],
            guard_config=self._guard_config,
            health=self._health,
        )
        pruned._fitted = self._fitted
        return pruned
