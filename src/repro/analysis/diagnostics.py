"""Time-series diagnostics: ACF/PACF, whiteness and stationarity tests.

Support tooling for configuring the pool (ARIMA orders, Holt-Winters
periods) and for analysing residuals of fitted forecasters.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats

from repro.exceptions import DataValidationError
from repro.preprocessing.embedding import validate_series


def acf(series: np.ndarray, max_lag: int = 40) -> np.ndarray:
    """Sample autocorrelation function for lags 0..max_lag.

    Uses the biased (1/n) estimator, the convention under which the ACF
    of a finite sample is a positive-semidefinite sequence.
    """
    array = validate_series(series, min_length=3)
    max_lag = min(max_lag, array.size - 1)
    centred = array - array.mean()
    variance = float(centred @ centred) / array.size
    if variance < 1e-24:
        raise DataValidationError("series is constant; ACF undefined")
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    for lag in range(1, max_lag + 1):
        out[lag] = float(centred[lag:] @ centred[:-lag]) / array.size / variance
    return out


def pacf(series: np.ndarray, max_lag: int = 40) -> np.ndarray:
    """Partial autocorrelation via Durbin-Levinson recursion.

    ``pacf(x)[k]`` is the correlation between ``x_t`` and ``x_{t-k}``
    after removing the linear influence of intermediate lags; the classic
    order-selection tool for AR(p) (cuts off after lag p).
    """
    rho = acf(series, max_lag=max_lag)
    max_lag = rho.size - 1
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if max_lag == 0:
        return out
    phi = np.zeros((max_lag + 1, max_lag + 1))
    phi[1, 1] = rho[1]
    out[1] = rho[1]
    for k in range(2, max_lag + 1):
        numerator = rho[k] - phi[k - 1, 1:k] @ rho[1:k][::-1]
        denominator = 1.0 - phi[k - 1, 1:k] @ rho[1:k]
        phi[k, k] = numerator / denominator if abs(denominator) > 1e-12 else 0.0
        for j in range(1, k):
            phi[k, j] = phi[k - 1, j] - phi[k, k] * phi[k - 1, k - j]
        out[k] = phi[k, k]
    return out


def ljung_box(series: np.ndarray, lags: int = 10) -> Tuple[float, float]:
    """Ljung-Box portmanteau test for autocorrelation.

    Returns ``(Q statistic, p-value)``; small p-values reject the
    null of white noise. Apply to model residuals: a well-specified
    forecaster leaves approximately white residuals.
    """
    array = validate_series(series, min_length=lags + 2)
    n = array.size
    rho = acf(array, max_lag=lags)[1:]
    q = n * (n + 2.0) * float(np.sum(rho ** 2 / (n - np.arange(1, lags + 1))))
    p_value = float(stats.chi2.sf(q, df=lags))
    return q, p_value


def adf_statistic(series: np.ndarray, max_lag: int = 1) -> float:
    """Augmented Dickey-Fuller t-statistic (constant, no trend).

    Regresses ``Δx_t`` on ``x_{t-1}`` (plus ``max_lag`` lagged
    differences and a constant) and returns the t-statistic of the
    ``x_{t-1}`` coefficient. Values well below ≈ −2.9 indicate
    stationarity at the 5 % level; values near 0 indicate a unit root.
    """
    array = validate_series(series, min_length=max_lag + 10)
    dx = np.diff(array)
    rows = dx.size - max_lag
    X_cols = [np.ones(rows), array[max_lag:-1]]
    for j in range(1, max_lag + 1):
        X_cols.append(dx[max_lag - j : dx.size - j])
    X = np.column_stack(X_cols)
    y = dx[max_lag:]
    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    residuals = y - X @ beta
    dof = max(rows - X.shape[1], 1)
    sigma2 = float(residuals @ residuals) / dof
    cov = sigma2 * np.linalg.inv(X.T @ X)
    return float(beta[1] / np.sqrt(cov[1, 1]))


def is_stationary(series: np.ndarray, threshold: float = -2.9) -> bool:
    """Heuristic stationarity decision from the ADF t-statistic."""
    return adf_statistic(series) < threshold


def detect_period(
    series: np.ndarray,
    min_period: int = 2,
    max_period: int = None,
    min_power_fraction: float = 0.2,
) -> int:
    """Dominant seasonal period via the periodogram (0 = no clear season).

    The peak frequency must carry at least ``min_power_fraction`` of the
    total spectral power in the valid band to count as a genuine season —
    for white noise each of the ~n/2 frequencies carries ≈ 2/n of the
    power, so even the sample maximum stays far below the default 20 %.
    """
    array = validate_series(series, min_length=16)
    detrended = array - np.polyval(np.polyfit(np.arange(array.size), array, 1),
                                   np.arange(array.size))
    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    freqs = np.fft.rfftfreq(array.size)
    spectrum[0] = 0.0  # drop the mean component
    if max_period is None:
        max_period = array.size // 3
    valid = (freqs > 0) & (1.0 / np.maximum(freqs, 1e-12) >= min_period) & (
        1.0 / np.maximum(freqs, 1e-12) <= max_period
    )
    if not np.any(valid):
        return 0
    masked = np.where(valid, spectrum, 0.0)
    peak = int(np.argmax(masked))
    total = float(masked.sum())
    if total < 1e-24 or masked[peak] < min_power_fraction * total:
        return 0
    return int(round(1.0 / freqs[peak]))
