"""Classical seasonal decomposition (trend + seasonal + remainder).

Moving-average decomposition in the style of ``decompose`` in R /
``seasonal_decompose`` in statsmodels: additive model
``x_t = trend_t + seasonal_t + remainder_t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.preprocessing.embedding import validate_series


@dataclass(frozen=True)
class Decomposition:
    """Additive decomposition components, each aligned with the input."""

    trend: np.ndarray
    seasonal: np.ndarray
    remainder: np.ndarray

    def reconstruct(self) -> np.ndarray:
        """trend + seasonal + remainder (== the original series)."""
        return self.trend + self.seasonal + self.remainder

    @property
    def seasonal_strength(self) -> float:
        """1 − Var(remainder)/Var(seasonal+remainder) (Hyndman's F_S).

        Close to 1 for strongly seasonal series, near 0 when the
        seasonal component explains nothing.
        """
        detrended = self.seasonal + self.remainder
        var_detrended = float(np.var(detrended))
        if var_detrended < 1e-24:
            return 0.0
        return max(0.0, 1.0 - float(np.var(self.remainder)) / var_detrended)

    @property
    def trend_strength(self) -> float:
        """1 − Var(remainder)/Var(trend+remainder) (Hyndman's F_T)."""
        deseasoned = self.trend + self.remainder
        var_deseasoned = float(np.var(deseasoned))
        if var_deseasoned < 1e-24:
            return 0.0
        return max(0.0, 1.0 - float(np.var(self.remainder)) / var_deseasoned)


def _centred_moving_average(series: np.ndarray, period: int) -> np.ndarray:
    """2×m centred MA for even periods, plain m-MA for odd; edges are
    filled by extending the first/last computable value."""
    n = series.size
    if period % 2 == 0:
        kernel = np.ones(period + 1)
        kernel[0] = kernel[-1] = 0.5
        kernel /= period
    else:
        kernel = np.ones(period) / period
    half = kernel.size // 2
    valid = np.convolve(series, kernel, mode="valid")
    out = np.empty(n)
    out[half : half + valid.size] = valid
    out[:half] = valid[0]
    out[half + valid.size :] = valid[-1]
    return out


def decompose(series: np.ndarray, period: int) -> Decomposition:
    """Additive classical decomposition with seasonal period ``period``."""
    if period < 2:
        raise ConfigurationError(f"period must be >= 2, got {period}")
    array = validate_series(series, min_length=2 * period)
    trend = _centred_moving_average(array, period)
    detrended = array - trend
    seasonal_means = np.array(
        [detrended[phase::period].mean() for phase in range(period)]
    )
    seasonal_means -= seasonal_means.mean()  # identifiability: zero-sum season
    seasonal = seasonal_means[np.arange(array.size) % period]
    remainder = array - trend - seasonal
    return Decomposition(trend=trend, seasonal=seasonal, remainder=remainder)


def deseasonalise(series: np.ndarray, period: int) -> np.ndarray:
    """Series minus its estimated seasonal component."""
    decomposition = decompose(series, period)
    return np.asarray(series, dtype=np.float64) - decomposition.seasonal
