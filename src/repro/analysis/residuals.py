"""Residual analysis for fitted forecasters.

A well-specified forecaster leaves residuals that are unbiased and
approximately white; these helpers quantify both and produce a compact
per-model report for a whole pool (useful when deciding what to prune).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.diagnostics import acf, ljung_box
from repro.exceptions import DataValidationError


@dataclass(frozen=True)
class ResidualReport:
    """Summary statistics of a forecaster's one-step residuals."""

    mean: float
    std: float
    lag1_autocorrelation: float
    ljung_box_p: float
    rmse: float

    @property
    def is_unbiased(self) -> bool:
        """|mean| below a tenth of the residual std (rough t-test)."""
        return abs(self.mean) < 0.1 * max(self.std, 1e-12)

    @property
    def is_white(self) -> bool:
        """Ljung-Box fails to reject whiteness at the 5 % level."""
        return self.ljung_box_p > 0.05


def analyse_residuals(
    predictions: np.ndarray, truth: np.ndarray, lags: int = 10
) -> ResidualReport:
    """Residual report from aligned one-step predictions and truths."""
    pred = np.asarray(predictions, dtype=np.float64)
    y = np.asarray(truth, dtype=np.float64)
    if pred.shape != y.shape or pred.ndim != 1:
        raise DataValidationError(
            f"predictions {pred.shape} and truth {y.shape} must align"
        )
    if pred.size < lags + 3:
        raise DataValidationError(
            f"need at least {lags + 3} points for a {lags}-lag report"
        )
    residuals = y - pred
    if np.ptp(residuals) < 1e-12:
        # Perfectly constant residuals: whiteness is ill-defined; report
        # a degenerate but safe summary.
        return ResidualReport(
            mean=float(residuals.mean()),
            std=0.0,
            lag1_autocorrelation=0.0,
            ljung_box_p=1.0,
            rmse=float(np.sqrt(np.mean(residuals ** 2))),
        )
    rho1 = float(acf(residuals, max_lag=1)[1])
    _, p = ljung_box(residuals, lags=min(lags, residuals.size // 3))
    return ResidualReport(
        mean=float(residuals.mean()),
        std=float(residuals.std()),
        lag1_autocorrelation=rho1,
        ljung_box_p=float(p),
        rmse=float(np.sqrt(np.mean(residuals ** 2))),
    )


def pool_residual_reports(
    prediction_matrix: np.ndarray,
    truth: np.ndarray,
    names: Sequence[str],
    lags: int = 10,
) -> Dict[str, ResidualReport]:
    """Per-member residual reports over a pool prediction matrix."""
    P = np.asarray(prediction_matrix, dtype=np.float64)
    if P.ndim != 2 or P.shape[1] != len(names):
        raise DataValidationError(
            f"matrix {P.shape} does not match {len(names)} member names"
        )
    return {
        name: analyse_residuals(P[:, i], truth, lags=lags)
        for i, name in enumerate(names)
    }


def rank_by_whiteness(reports: Dict[str, ResidualReport]) -> List[str]:
    """Member names sorted by Ljung-Box p-value (whitest first)."""
    return sorted(reports, key=lambda name: -reports[name].ljung_box_p)
