"""Series diagnostics and decomposition utilities."""

from repro.analysis.decomposition import Decomposition, decompose, deseasonalise
from repro.analysis.residuals import (
    ResidualReport,
    analyse_residuals,
    pool_residual_reports,
    rank_by_whiteness,
)
from repro.analysis.diagnostics import (
    acf,
    adf_statistic,
    detect_period,
    is_stationary,
    ljung_box,
    pacf,
)

__all__ = [
    "Decomposition",
    "ResidualReport",
    "analyse_residuals",
    "acf",
    "adf_statistic",
    "decompose",
    "deseasonalise",
    "detect_period",
    "is_stationary",
    "ljung_box",
    "pacf",
    "pool_residual_reports",
    "rank_by_whiteness",
]
