"""Recurrent layers: LSTM cell, (stacked) LSTM, and bidirectional LSTM.

All layers take batch-first input of shape ``(batch, time, features)`` and
are built from autograd primitives, so backpropagation-through-time falls
out of the graph structure without any bespoke backward code.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.init import orthogonal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class LSTMCell(Module):
    """A single LSTM cell with standard gates (input, forget, cell, output).

    The four gates are computed in one fused affine map over the
    concatenation ``[x_t, h_{t-1}]`` for speed. The forget-gate bias is
    initialised to 1.0, the usual trick for healthy gradient flow.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ConfigurationError(
                f"LSTMCell sizes must be positive, got "
                f"({input_size}, {hidden_size})"
            )
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        w_x = xavier_uniform(input_size, 4 * hidden_size, rng)
        w_h = orthogonal(hidden_size, 4 * hidden_size, rng)
        self.weight = Parameter(np.concatenate([w_x, w_h], axis=0))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate bias
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(batch, input_size)``; returns ``(h, c)``."""
        h_prev, c_prev = state
        stacked = Tensor.concatenate([x, h_prev], axis=1)
        gates = stacked @ self.weight + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0:hs].sigmoid()
        f_gate = gates[:, hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """Unidirectional (optionally stacked) LSTM over batch-first sequences.

    Parameters
    ----------
    input_size, hidden_size:
        Feature sizes.
    num_layers:
        Stacking depth; layer ``i > 0`` consumes layer ``i-1``'s hidden
        sequence — this is the "StLSTM" cascade the paper uses as baseline.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = [
            LSTMCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
            for i in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tensor:
        """Return the full hidden sequence ``(batch, time, hidden_size)``
        of the top layer."""
        batch, steps, _ = x.shape
        sequence = [x[:, t, :] for t in range(steps)]
        for cell in self.cells:
            h, c = cell.initial_state(batch)
            outputs: List[Tensor] = []
            for step_input in sequence:
                h, c = cell(step_input, (h, c))
                outputs.append(h)
            sequence = outputs
        return Tensor.stack(sequence, axis=1)

    def last_hidden(self, x: Tensor) -> Tensor:
        """Return only the final time-step hidden state ``(batch, hidden)``."""
        return self.forward(x)[:, -1, :]


class BiLSTM(Module):
    """Bidirectional LSTM; outputs forward/backward concatenation.

    The output feature size is ``2 * hidden_size``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.forward_lstm = LSTM(input_size, hidden_size, rng=rng)
        self.backward_lstm = LSTM(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        steps = x.shape[1]
        fwd = self.forward_lstm(x)
        reversed_x = Tensor.stack(
            [x[:, t, :] for t in range(steps - 1, -1, -1)], axis=1
        )
        bwd_rev = self.backward_lstm(reversed_x)
        bwd = Tensor.stack(
            [bwd_rev[:, t, :] for t in range(steps - 1, -1, -1)], axis=1
        )
        return Tensor.concatenate([fwd, bwd], axis=2)

    def last_hidden(self, x: Tensor) -> Tensor:
        """Final forward state ++ final (earliest-input) backward state."""
        out = self.forward(x)
        return out[:, -1, :]
