"""Parameter persistence for Modules (npz-based, dependency-free).

Writes go through the crash-safe primitives in :mod:`repro.persistence`:
the archive is staged in a temp file, fsynced, and renamed into place,
so a crash mid-save can never leave a torn ``.npz`` where a previous
good archive used to be. NumPy's silent ``.npz`` suffix-appending is
normalised on both sides (``save_module(m, "weights")`` and
``load_module(m, "weights")`` address the same file).
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.exceptions import DataValidationError, SerializationError
from repro.nn.module import Module
from repro.persistence import PathLike, resolve_npz_path, save_npz_atomic


def save_module(module: Module, path: PathLike) -> Path:
    """Save a module's parameters to ``path`` (numpy ``.npz``), atomically.

    Only parameter values are stored — the architecture must be rebuilt
    by the caller before :func:`load_module` (the usual state-dict
    convention). Returns the path actually written (with the ``.npz``
    suffix numpy would have appended).
    """
    state = module.state_dict()
    if not state:
        raise DataValidationError("module has no parameters to save")
    return save_npz_atomic(path, state)


def load_module(module: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``.

    The module must have the same architecture; a missing/unexpected
    parameter raises :class:`~repro.exceptions.SerializationError`
    naming the first offending key, a shape mismatch raises
    :class:`~repro.exceptions.DataValidationError`. Returns the module
    for chaining.
    """
    resolved = resolve_npz_path(path)
    if not resolved.exists():
        raise SerializationError(f"module archive not found: {resolved}")
    try:
        with np.load(resolved) as archive:
            state = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile) as err:
        raise SerializationError(
            f"module archive {resolved} is unreadable: {err}"
        ) from err
    module.load_state_dict(state)
    return module
