"""Parameter persistence for Modules (npz-based, dependency-free)."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.exceptions import DataValidationError
from repro.nn.module import Module

PathLike = Union[str, os.PathLike]


def save_module(module: Module, path: PathLike) -> None:
    """Save a module's parameters to ``path`` (numpy ``.npz``).

    Only parameter values are stored — the architecture must be rebuilt
    by the caller before :func:`load_module` (the usual state-dict
    convention).
    """
    state = module.state_dict()
    if not state:
        raise DataValidationError("module has no parameters to save")
    np.savez(path, **state)


def load_module(module: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``.

    The module must have the same architecture (names and shapes).
    Returns the module for chaining.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
