"""Feed-forward layers: Linear, activations, Dropout, LayerNorm, Sequential."""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W + b`` with configurable initialisation.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    rng:
        Numpy random generator used for weight init (keeps every network in
        the library reproducible from a single seed).
    init:
        One of ``"xavier"``, ``"he"``, ``"fanin"``, ``"final"`` — the last
        two mirror the DDPG paper's initialisation.
    bias:
        Whether to learn an additive bias.
    """

    _INITS: dict = {
        "xavier": init_schemes.xavier_uniform,
        "he": init_schemes.he_uniform,
        "fanin": init_schemes.uniform_fanin,
        "final": init_schemes.final_layer_uniform,
        "orthogonal": init_schemes.orthogonal,
    }

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        init: str = "xavier",
        bias: bool = True,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Linear dims must be positive, got ({in_features}, {out_features})"
            )
        if init not in self._INITS:
            raise ConfigurationError(f"unknown init scheme {init!r}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(self._INITS[init](in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


def _apply_relu(x: Tensor) -> Tensor:
    return x.relu()


def _apply_tanh(x: Tensor) -> Tensor:
    return x.tanh()


def _apply_sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def _apply_leaky_relu(x: Tensor, slope: float) -> Tensor:
    return x.leaky_relu(slope)


class _Activation(Module):
    """Stateless activation wrapper so activations compose in Sequential.

    ``fn`` must be a module-level callable (not a lambda/closure) so that
    trained networks stay picklable and can cross process boundaries in
    the parallel pool executor.
    """

    def __init__(self, fn: Callable[..., Tensor], name: str):
        super().__init__()
        self._fn = fn
        self._name = name

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)

    def __repr__(self) -> str:
        return f"{self._name}()"


class ReLU(_Activation):
    def __init__(self) -> None:
        super().__init__(_apply_relu, "ReLU")


class Tanh(_Activation):
    def __init__(self) -> None:
        super().__init__(_apply_tanh, "Tanh")


class Sigmoid(_Activation):
    def __init__(self) -> None:
        super().__init__(_apply_sigmoid, "Sigmoid")


class LeakyReLU(_Activation):
    def __init__(self, slope: float = 0.01) -> None:
        super().__init__(partial(_apply_leaky_relu, slope=slope), "LeakyReLU")


class Softmax(Module):
    """Softmax along ``axis``; the paper's actor head uses this to produce
    positive weights that sum to one (the 'standard normalisation')."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=self.axis)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(features))
        self.beta = Parameter(np.zeros(features))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)


def mlp(
    sizes: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    activation: str = "relu",
    output_activation: Optional[str] = None,
    init: str = "xavier",
    final_init: Optional[str] = None,
) -> Sequential:
    """Build a multilayer perceptron from a list of layer widths.

    ``mlp([10, 32, 32, 1])`` yields Linear(10,32)-act-Linear(32,32)-act-
    Linear(32,1)[-output_activation].
    """
    activations = {
        "relu": ReLU,
        "tanh": Tanh,
        "sigmoid": Sigmoid,
        "leaky_relu": LeakyReLU,
        "softmax": Softmax,
    }
    if activation not in activations:
        raise ConfigurationError(f"unknown activation {activation!r}")
    if output_activation is not None and output_activation not in activations:
        raise ConfigurationError(f"unknown output activation {output_activation!r}")
    if len(sizes) < 2:
        raise ConfigurationError("mlp needs at least input and output sizes")
    rng = rng if rng is not None else np.random.default_rng()
    net = Sequential()
    last = len(sizes) - 2
    for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        layer_init = init
        if i == last and final_init is not None:
            layer_init = final_init
        net.append(Linear(fan_in, fan_out, rng=rng, init=layer_init))
        if i < last:
            net.append(activations[activation]())
    if output_activation is not None:
        net.append(activations[output_activation]())
    return net
