"""Regression losses operating on autograd tensors."""

from __future__ import annotations

from repro.nn.tensor import Tensor


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    return (pred - target).abs().mean()


def huber_loss(pred: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta``, linear outside.

    Implemented as a smooth composite of autograd primitives:
    ``0.5·e²`` where ``|e| <= delta``, else ``delta·(|e| − 0.5·delta)``.
    """
    error = pred - target
    abs_error = error.abs()
    quadratic = abs_error.clip(0.0, delta)
    linear = abs_error - quadratic
    per_element = quadratic * quadratic * 0.5 + linear * delta
    return per_element.mean()
