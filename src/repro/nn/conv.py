"""1-D convolution layers for CNN-LSTM and ConvLSTM forecasters.

``Conv1d`` works on batch-first sequences ``(batch, time, channels)`` and is
implemented as gather-windows + matmul so that autograd handles the backward
pass through the fancy-indexing gradient.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Conv1d(Module):
    """Temporal convolution: ``(batch, time, c_in) -> (batch, t_out, c_out)``.

    Uses 'valid' padding: ``t_out = time - kernel_size + 1`` (with
    ``padding="same"`` the input is zero-padded so ``t_out = time``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: Optional[np.random.Generator] = None,
        padding: str = "valid",
    ):
        super().__init__()
        if kernel_size < 1:
            raise ConfigurationError(f"kernel_size must be >= 1, got {kernel_size}")
        if padding not in ("valid", "same"):
            raise ConfigurationError(f"padding must be 'valid' or 'same', got {padding!r}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        fan_in = kernel_size * in_channels
        self.weight = Parameter(xavier_uniform(fan_in, out_channels, rng))
        self.bias = Parameter(np.zeros(out_channels))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ConfigurationError(
                f"Conv1d expects (batch, time, channels), got shape {x.shape}"
            )
        steps = x.shape[1]
        if self.padding == "same":
            left = (self.kernel_size - 1) // 2
            right = self.kernel_size - 1 - left
            zeros_left = Tensor(np.zeros((x.shape[0], left, x.shape[2])))
            zeros_right = Tensor(np.zeros((x.shape[0], right, x.shape[2])))
            x = Tensor.concatenate([zeros_left, x, zeros_right], axis=1)
            steps = x.shape[1]
        t_out = steps - self.kernel_size + 1
        if t_out < 1:
            raise ConfigurationError(
                f"sequence length {steps} shorter than kernel {self.kernel_size}"
            )
        # Gather sliding windows with a single fancy index: (t_out, k).
        idx = np.arange(t_out)[:, None] + np.arange(self.kernel_size)[None, :]
        windows = x[:, idx, :]  # (batch, t_out, k, c_in)
        flat = windows.reshape(x.shape[0], t_out, self.kernel_size * self.in_channels)
        return flat @ self.weight + self.bias


class MaxPool1d(Module):
    """Non-overlapping temporal max pooling ``(batch, time, c) -> (batch, time//k, c)``."""

    def __init__(self, kernel_size: int):
        super().__init__()
        if kernel_size < 1:
            raise ConfigurationError(f"kernel_size must be >= 1, got {kernel_size}")
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, channels = x.shape
        out_steps = steps // self.kernel_size
        if out_steps < 1:
            raise ConfigurationError(
                f"sequence length {steps} shorter than pool {self.kernel_size}"
            )
        trimmed = x[:, : out_steps * self.kernel_size, :]
        windows = trimmed.reshape(batch, out_steps, self.kernel_size, channels)
        return windows.max(axis=2)


class GlobalAveragePool1d(Module):
    """Average over the time axis: ``(batch, time, c) -> (batch, c)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=1)
