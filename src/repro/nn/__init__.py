"""Numpy-based neural-network substrate (autograd, layers, optimisers).

The environment ships no deep-learning framework, so this package provides
the pieces the paper's method needs: a reverse-mode autograd
(:mod:`repro.nn.tensor`), feed-forward / recurrent / convolutional layers,
losses, and first-order optimisers. It is intentionally small but complete
enough to train the actor-critic networks and the neural base forecasters.
"""

from repro.nn.batched import (
    StackedLinears,
    batched_dot,
    batched_matvec,
    rowwise_softmax,
)
from repro.nn.conv import Conv1d, GlobalAveragePool1d, MaxPool1d
from repro.nn.layers import (
    Dropout,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    mlp,
)
from repro.nn.losses import huber_loss, mae_loss, mse_loss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer, RMSprop, clip_grad_norm
from repro.nn.recurrent import BiLSTM, LSTM, LSTMCell
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor, concatenate, stack, tensor

__all__ = [
    "Adam",
    "BiLSTM",
    "Conv1d",
    "Dropout",
    "GlobalAveragePool1d",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "MaxPool1d",
    "Module",
    "Optimizer",
    "Parameter",
    "RMSprop",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "StackedLinears",
    "Tanh",
    "Tensor",
    "batched_dot",
    "batched_matvec",
    "clip_grad_norm",
    "rowwise_softmax",
    "concatenate",
    "huber_loss",
    "load_module",
    "save_module",
    "mae_loss",
    "mlp",
    "mse_loss",
    "stack",
    "tensor",
]
