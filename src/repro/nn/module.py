"""Module/parameter containers for the numpy neural-network substrate.

A :class:`Module` owns :class:`Parameter` tensors and child modules and
exposes the usual conveniences: recursive parameter iteration, zeroing
gradients, train/eval switching, and a flat ``state_dict`` for
serialization (used by DDPG target-network synchronisation).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.exceptions import DataValidationError, SerializationError
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural-network building blocks.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; these are discovered automatically for
    :meth:`parameters` / :meth:`named_parameters`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values in-place from :meth:`state_dict` output.

        Raises :class:`~repro.exceptions.SerializationError` (a
        ``KeyError``) naming the first missing/unexpected parameter, or
        :class:`~repro.exceptions.DataValidationError` (a ``ValueError``)
        naming the first shape mismatch — so a truncated or
        wrong-architecture archive fails loudly instead of half-loading.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            first = missing[0] if missing else unexpected[0]
            raise SerializationError(
                f"state dict mismatch at {first!r}; "
                f"missing={missing} unexpected={unexpected}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise DataValidationError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data[...] = state[name]

    def copy_from(self, other: "Module") -> None:
        """Hard-copy parameters from a same-architecture module.

        Copies in place without the intermediate snapshot
        :meth:`state_dict` would allocate — this runs per tenant clone
        on the serving restore path. Any structural mismatch falls back
        to :meth:`load_state_dict` for its precise error.
        """
        own = dict(self.named_parameters())
        copied = 0
        for name, source in other.named_parameters():
            param = own.get(name)
            if param is None or param.data.shape != source.data.shape:
                self.load_state_dict(other.state_dict())
                return
            param.data[...] = source.data
            copied += 1
        if copied != len(own):
            self.load_state_dict(other.state_dict())

    def soft_update_from(self, other: "Module", tau: float) -> None:
        """Polyak-average parameters: ``θ ← τ·θ_other + (1-τ)·θ``.

        Used for DDPG target networks (Lillicrap et al. 2015, Eq. 7).
        """
        own = dict(self.named_parameters())
        for name, source in other.named_parameters():
            own[name].data *= 1.0 - tau
            own[name].data += tau * source.data

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())
