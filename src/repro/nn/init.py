"""Weight-initialisation schemes for the nn substrate."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform init: ``U(-a, a)``, ``a = gain·sqrt(6/(in+out))``."""
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init for ReLU layers."""
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def uniform_fanin(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """DDPG-paper hidden-layer init: ``U(-1/sqrt(f), 1/sqrt(f))``."""
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def final_layer_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, scale: float = 3e-3
) -> np.ndarray:
    """DDPG-paper output-layer init: small uniform so initial outputs ≈ 0."""
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class ZeroDrawGenerator:
    """Generator stand-in whose draws are all zeros, consuming no RNG.

    Used when constructing a network *skeleton* whose every parameter
    is immediately overwritten (checkpoint restore, template cloning):
    real init draws would only burn time — and advancing a real
    generator would be wrong anyway once its state is restored from a
    snapshot. Implements just the methods the init schemes call.
    """

    def uniform(self, low=0.0, high=1.0, size=None) -> np.ndarray:
        return np.zeros(() if size is None else size)

    def standard_normal(self, size=None) -> np.ndarray:
        return np.zeros(() if size is None else size)


def orthogonal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal init (used for recurrent kernels)."""
    matrix = rng.standard_normal((max(fan_in, fan_out), min(fan_in, fan_out)))
    q, r = np.linalg.qr(matrix)
    q *= np.sign(np.diag(r))
    if fan_in < fan_out:
        q = q.T
    return q[:fan_in, :fan_out]
