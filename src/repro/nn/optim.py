"""First-order optimisers for the nn substrate: SGD, Adam, RMSprop."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError
from repro.nn.module import Parameter


def _slot_arrays(name: str, slots: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
    return {f"{name}.{i}": slot.copy() for i, slot in enumerate(slots)}


def _restore_slots(
    slots: Sequence[np.ndarray], name: str, arrays: Dict[str, np.ndarray]
) -> None:
    for i, slot in enumerate(slots):
        key = f"{name}.{i}"
        if key not in arrays:
            raise CheckpointError(f"optimizer snapshot is missing slot {key!r}")
        value = np.asarray(arrays[key])
        if value.shape != slot.shape:
            raise CheckpointError(
                f"optimizer slot {key!r} has shape {value.shape}, "
                f"expected {slot.shape}"
            )
        slot[...] = value


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ConfigurationError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (repro.runtime.checkpoint): subclasses
    # capture their moment/velocity slots so a restored optimizer takes
    # bit-identical future steps.
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        return {}, {}

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        if arrays or meta:
            raise CheckpointError(
                f"{type(self).__name__} holds no state but the snapshot "
                "carries some"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def checkpoint_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        return _slot_arrays("velocity", self._velocity), {}

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        _restore_slots(self._velocity, "velocity", arrays)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        # Moment buffers allocate on first use: serving restores build
        # one Adam per network per tenant clone, and pristine tenants
        # never step — eager zeros there were pure construction cost.
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._t = 0

    def _slots(self) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        if self._m is None:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
        return self._m, self._v

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        moments_m, moments_v = self._slots()
        for param, m, v in zip(self.params, moments_m, moments_v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def checkpoint_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        moments_m, moments_v = self._slots()
        arrays = _slot_arrays("m", moments_m)
        arrays.update(_slot_arrays("v", moments_v))
        return arrays, {"t": self._t}

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        moments_m, moments_v = self._slots()
        _restore_slots(moments_m, "m", arrays)
        _restore_slots(moments_v, "v", arrays)
        self._t = int(meta["t"])


class RMSprop(Optimizer):
    """RMSprop with exponential moving average of squared gradients."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, sq in zip(self.params, self._sq):
            if param.grad is None:
                continue
            sq *= self.alpha
            sq += (1.0 - self.alpha) * param.grad * param.grad
            param.data -= self.lr * param.grad / (np.sqrt(sq) + self.eps)

    def checkpoint_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        return _slot_arrays("sq", self._sq), {}

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        _restore_slots(self._sq, "sq", arrays)


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm (useful for monitoring training stability).
    """
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
