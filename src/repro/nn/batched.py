"""Inference-only batched evaluation of per-tenant weight stacks.

Serving hosts many tenants whose networks share one architecture but
(potentially) diverged parameters. Stepping them one at a time costs N
small matmuls per coalesced batch; this module evaluates the whole batch
in one stacked pass: per-layer weights are stacked into 3-D arrays
``(N, in, out)`` — or kept as a single broadcast slice ``(1, in, out)``
when every tenant still shares the same layer object — and applied with
``np.matmul`` over the batch dimension, bypassing autograd entirely.

Bit-identity is the contract, not an aspiration. BLAS picks different
kernels (and different summation orders) for different operand shapes,
so a plain 2-D ``(N, in) @ (in, out)`` gemm does NOT reproduce the
per-row ``(1, in) @ (in, out)`` results to the ulp. Batched ``matmul``
on a 3-D stack runs one ``(1, in) @ (in, out)`` gemm per slice — the
same kernel the per-tenant path uses — so every helper here goes through
that form. ``tests/nn/test_batched_forward.py`` pins the equivalence
against looped references.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "StackedLinears",
    "batched_dot",
    "batched_matvec",
    "relu",
    "rowwise_softmax",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise max(x, 0) — trivially bit-identical to the looped form."""
    return np.maximum(x, 0.0)


def rowwise_softmax(logits: np.ndarray) -> np.ndarray:
    """Max-shifted softmax over the last axis, row by row.

    Every operation is elementwise or a per-row reduction over a
    contiguous slice, so each row matches the single-row computation
    bitwise.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def batched_matvec(x: np.ndarray, coef: np.ndarray) -> np.ndarray:
    """``x[i] @ coef`` for each row, bit-identical to the per-row loop.

    A 2-D gemv ``(N, k) @ (k,)`` does not match per-row dots to the ulp;
    the 3-D matmul form does, because it runs the same ``(1, k) @ (k,)``
    kernel per slice.
    """
    return np.matmul(x[:, None, :], coef)[:, 0]


def batched_dot(rows: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-row dot product ``rows[i] @ weights[i]`` as one batched matmul.

    ``np.einsum`` and ``(rows * weights).sum(axis=1)`` change the
    summation order; the matmul-per-slice form reproduces ``float(r @ w)``
    bitwise.
    """
    return np.matmul(rows[:, None, :], weights[:, :, None])[:, 0, 0]


class StackedLinears:
    """One ``Linear`` layer position stacked across N tenant networks.

    ``weight`` is ``(N, in, out)`` — or ``(1, in, out)`` when every
    tenant still holds the *same* layer object, in which case the single
    slice broadcasts across the batch without copying ~N× the weights.
    """

    __slots__ = ("weight", "bias", "shared")

    def __init__(self, weight: np.ndarray, bias: np.ndarray, shared: bool):
        self.weight = weight
        self.bias = bias
        self.shared = shared

    @classmethod
    def from_layers(cls, layers: Sequence) -> "StackedLinears":
        """Stack the same layer position taken from N sibling networks.

        Object identity is the sharing test: pristine tenant clones that
        substitute the template's layer objects collapse to one broadcast
        slice; any tenant with its own (possibly updated) layer forces a
        true stack.
        """
        first = layers[0]
        if all(layer is first for layer in layers):
            return cls(
                first.weight.data[None, :, :],
                first.bias.data[None, :],
                True,
            )
        weight = np.stack([layer.weight.data for layer in layers])
        bias = np.stack([layer.bias.data for layer in layers])
        return cls(weight, bias, False)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``x[i] @ W[i] + b[i]`` for every tenant in one batched matmul.

        ``x`` is ``(N, in)``; returns ``(N, out)``. The ``(1, in)``
        slice-wise gemm plus elementwise bias add reproduces the
        per-tenant ``row @ W + b`` bitwise.
        """
        return np.matmul(x[:, None, :], self.weight)[:, 0, :] + self.bias
