"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class: a thin wrapper around a
``numpy.ndarray`` that records the operations applied to it and can compute
gradients of a scalar output with respect to every tensor in the graph via
:meth:`Tensor.backward`.

The design mirrors the classic define-by-run autograd pattern: each
operation returns a new :class:`Tensor` holding references to its parent
tensors and a closure that propagates the incoming gradient to them.
Gradients of broadcast operands are reduced back to the operand shape with
:func:`_unbroadcast`.

The paper's actor/critic networks, the MLP/LSTM base forecasters, and the
stacked-LSTM baseline are all trained through this engine (the environment
ships no PyTorch, so the substrate is built from scratch — see DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GradientError

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` into a float64 numpy array."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting.

    When a tensor of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the gradient
    over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.

    Examples
    --------
    >>> x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
    >>> y = (x * x).sum()
    >>> y.backward()
    >>> x.grad
    array([2., 4., 6.])
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents")

    # Let Tensor.__r*__ win over ndarray ops in mixed expressions.
    __array_priority__ = 100.0

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def ones(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make_child(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        child = Tensor(data)
        if any(p.requires_grad for p in parents):
            child.requires_grad = True
            child._parents = parents
            child._backward = backward
        return child

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make_child(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make_child(-self.data, (self,), backward)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make_child(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                g = -grad * self.data / (other.data ** 2)
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make_child(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise GradientError("Tensor ** only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.outer(grad, b) if grad.ndim == 1 else grad[..., None] * b
                    if a.ndim == 1:
                        ga = grad * b
                else:
                    g = grad[..., None, :] if a.ndim == 1 else grad
                    ga = g @ np.swapaxes(b, -1, -2)
                    if a.ndim == 1:
                        ga = ga.reshape(a.shape)
                self._accumulate(_unbroadcast(np.asarray(ga), a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.outer(a, grad) if b.ndim > 1 else grad * a
                else:
                    g = grad[..., None] if b.ndim == 1 else grad
                    at = np.swapaxes(a, -1, -2)
                    gb = at @ g
                    if b.ndim == 1:
                        gb = gb.reshape(-1, *b.shape).sum(axis=0) if gb.ndim > 1 else gb
                        gb = gb.reshape(b.shape)
                other._accumulate(_unbroadcast(np.asarray(gb), b.shape))

        return self._make_child(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make_child(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make_child(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make_child(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return self._make_child(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make_child(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            # Spread gradient equally among ties.
            counts = mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g / counts)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make_child(out_data, (self,), backward)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(grad, inverse))

        return self._make_child(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make_child(np.asarray(out_data), (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        child = Tensor(out_data)
        if any(t.requires_grad for t in tensors):
            child.requires_grad = True
            child._parents = tuple(tensors)
            child._backward = backward
        return child

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(grad, i, axis=axis))

        child = Tensor(out_data)
        if any(t.requires_grad for t in tensors):
            child.requires_grad = True
            child._parents = tuple(tensors)
            child._backward = backward
        return child

    # ------------------------------------------------------------------
    # Composite ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if grad.shape != self.data.shape:
            raise GradientError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.data.shape}"
            )
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Incoming gradient; defaults to 1.0 (only valid for scalar
            outputs, matching the usual loss-backward usage).
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a "
                    "scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order = self._topological_order()
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _topological_order(self) -> List["Tensor"]:
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    return Tensor.concatenate(list(tensors), axis=axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    return Tensor.stack(list(tensors), axis=axis)
