"""Shared model artefacts + per-tenant session construction.

A :class:`ModelBundle` packages everything the serving layer shares
across tenants — the fitted base-forecaster pool, the offline scaler,
and the trained policy networks — and manufactures per-series
:class:`~repro.serving.session.SeriesSession` objects from them.

Sharing vs owning is deliberate:

- the **pool** and **scaler** are shared by every session: member
  ``predict_next`` and scaler transforms are pure reads of fitted state,
  safe under concurrent use (guarded/parallel pool wrappers mutate
  shared health state and must not be served concurrently — use a plain
  :class:`~repro.models.pool.ForecasterPool`);
- each session **owns a clone of the policy agent** (network weights
  copied from the trained template, fresh optimizer/replay/noise with a
  per-session seed), so tenants adapt online independently and a
  session's full learning state can be spilled to disk and restored
  bit-identically.

The clone's replay capacity defaults to 512 transitions instead of the
offline 10 000: a full ring costs ~2.2 MB per session, which at hundreds
of tenants dominates memory for no benefit — online updates sample from
the recent window anyway.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import replace
from typing import Any, Dict, Optional

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DataValidationError,
)
from repro.preprocessing.embedding import validate_series
from repro.rl.agents import AgentProtocol
from repro.serving.session import SeriesSession

#: Default per-session replay capacity (vs 10 000 offline).
SESSION_BUFFER_CAPACITY = 512


def session_seed(session_id: str) -> int:
    """Deterministic per-session RNG seed derived from the session id.

    CRC32 keeps restarts reproducible: the same tenant id always gets
    the same exploration/replay stream, so a recreated service produces
    the same forecasts for the same inputs.
    """
    return zlib.crc32(session_id.encode("utf-8")) & 0x7FFFFFFF


class ModelBundle:
    """Fitted artefacts shared by every session of one deployment."""

    def __init__(
        self,
        pool,
        scaler,
        template_agent: AgentProtocol,
        *,
        window: int,
        reward_fn,
        mode: str = "drift",
        interval: int = 25,
        updates_per_trigger: int = 10,
        agent_config: Optional[Any] = None,
    ):
        self.pool = pool
        self.scaler = scaler
        self.template_agent = template_agent
        self.window = int(window)
        self.n_members = len(pool.names)
        self.reward_fn = reward_fn
        self.mode = mode
        self.interval = int(interval)
        self.updates_per_trigger = int(updates_per_trigger)
        self.agent_config = (
            agent_config
            if agent_config is not None
            else replace(
                template_agent.config,
                buffer_capacity=SESSION_BUFFER_CAPACITY,
            )
        )
        self._template_digest: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_estimator(
        cls,
        estimator,
        *,
        mode: str = "drift",
        interval: int = 25,
        updates_per_trigger: int = 10,
        buffer_capacity: int = SESSION_BUFFER_CAPACITY,
    ) -> "ModelBundle":
        """Build a bundle from a fitted :class:`repro.core.EADRL`."""
        from repro.core.eadrl import _make_reward

        if estimator.agent is None or estimator.pool is None:
            raise ConfigurationError(
                "ModelBundle requires an EADRL fitted with fit() — both "
                "the pool and the policy must exist"
            )
        return cls(
            estimator.pool,
            estimator._scaler,
            estimator.agent,
            window=estimator.config.window,
            reward_fn=_make_reward(estimator.config),
            mode=mode,
            interval=interval,
            updates_per_trigger=updates_per_trigger,
            agent_config=replace(
                estimator.agent.config, buffer_capacity=buffer_capacity
            ),
        )

    # ------------------------------------------------------------------
    def min_history(self) -> int:
        """Shortest admissible initial history for a new session."""
        return self.pool.max_min_context() + self.window

    @property
    def agent_name(self) -> str:
        """Registry key of the policy agent this bundle serves."""
        return type(self.template_agent).name

    def _template_modules(self):
        return list(self.template_agent._checkpoint_modules())

    def template_digest(self) -> str:
        """SHA-256 over the template networks' parameters (cached).

        Stamped into pristine-light spill snapshots: a snapshot that
        omitted its network arrays (agent never updated — the restorer
        re-copies them from this template) must refuse to restore
        against a *different* template, or the restored session would
        silently diverge from the one that was spilled.
        """
        if self._template_digest is None:
            digest = hashlib.sha256()
            for module_name, module in self._template_modules():
                state = module.state_dict()
                for name in sorted(state):
                    digest.update(f"{module_name}.{name}".encode())
                    digest.update(
                        np.ascontiguousarray(state[name]).tobytes()
                    )
            self._template_digest = digest.hexdigest()
        return self._template_digest

    def _clone_agent(self, seed: int, *, init_weights: bool = True):
        """Fresh agent with the template's network weights.

        Delegates to the agent's own
        :meth:`~repro.rl.agents.BaseAgent.clone_for_session` — networks
        copy the trained parameters; optimizer moments, replay ring,
        RNG and exploration state start clean under the per-session
        seed, with this bundle's session-sized ``agent_config``.
        """
        return self.template_agent.clone_for_session(
            seed, config=self.agent_config, init_weights=init_weights
        )

    # ------------------------------------------------------------------
    def create_session(
        self,
        session_id: str,
        history: np.ndarray,
        *,
        mode: Optional[str] = None,
        interval: Optional[int] = None,
        updates_per_trigger: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> SeriesSession:
        """New pool-mode session bootstrapped from a true-value history."""
        history = validate_series(history, min_length=self.min_history())
        boot = self.pool.prediction_matrix(
            history, history.size - self.window
        )
        return SeriesSession(
            self._clone_agent(
                seed if seed is not None else session_seed(session_id)
            ),
            self.scaler,
            window=self.window,
            n_members=self.n_members,
            reward_fn=self.reward_fn,
            bootstrap_matrix=boot,
            mode=mode if mode is not None else self.mode,
            interval=interval if interval is not None else self.interval,
            updates_per_trigger=(
                updates_per_trigger
                if updates_per_trigger is not None
                else self.updates_per_trigger
            ),
            pool=self.pool,
            history=history,
            session_id=session_id,
        )

    def restore_session(
        self, session_id: str, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> SeriesSession:
        """Rebuild a spilled session from its checkpoint snapshot.

        A skeleton session (zero bootstrap) is constructed with the
        snapshot's own trigger configuration, then every piece of live
        state — window, rings, detector, pending forecast, history, and
        the full agent — is overwritten from the snapshot, making the
        result bit-identical to the session that was spilled.
        """
        if int(meta["n_members"]) != self.n_members:
            raise DataValidationError(
                f"snapshot for {session_id!r} has {meta['n_members']} "
                f"members; this bundle serves {self.n_members}"
            )
        snapshot_kind = meta.get("agent", {}).get("kind", "ddpg")
        if snapshot_kind != self.agent_name:
            raise CheckpointError(
                f"snapshot of session {session_id!r} holds a "
                f"{snapshot_kind!r} agent; this bundle serves "
                f"{self.agent_name!r}"
            )
        if meta.get("agent", {}).get("pristine"):
            # Light snapshot: the agent's networks are *not* in the
            # payload — the skeleton clone below supplies them from the
            # template, which must be the exact one the snapshot assumed.
            expected = meta.get("template_digest")
            if expected is not None and expected != self.template_digest():
                raise CheckpointError(
                    f"pristine snapshot of session {session_id!r} was "
                    "written against a different template agent; cannot "
                    "restore its network weights from this bundle"
                )
        skeleton = SeriesSession(
            self._clone_agent(session_seed(session_id), init_weights=False),
            self.scaler,
            window=int(meta["window"]),
            n_members=self.n_members,
            reward_fn=self.reward_fn,
            bootstrap_matrix=np.zeros(
                (int(meta["window"]), self.n_members)
            ),
            mode=meta["mode"],
            interval=int(meta["interval"]),
            updates_per_trigger=int(meta["updates_per_trigger"]),
            pool=self.pool,
            history=np.zeros(1),
            session_id=session_id,
        )
        skeleton.restore_checkpoint_state(arrays, meta)
        return skeleton
