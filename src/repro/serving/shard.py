"""Shard worker process: one isolated :class:`ForecastService` per shard.

The supervised shard runtime (:mod:`repro.serving.supervisor`) spawns N
worker *processes*, each running this module's :func:`worker_main` loop:
a full in-process :class:`~repro.serving.service.ForecastService`
(thread executor, durable write-through) behind a pickled-dict RPC over
a :func:`multiprocessing.Pipe`. Process isolation is the point — a
worker segfault, OOM kill, or ``SIGKILL`` takes down only its shard's
resident sessions, all of which are recoverable from the shard's spill
directory by the replacement worker.

Protocol (one dict per message, pickled by the pipe):

- request: ``{"id", "op", "args", "expires_at"}`` — ``expires_at`` is an
  absolute ``time.monotonic()`` instant (same-host comparable), ``None``
  for no deadline;
- response: ``{"id", "ok": True, "result": ...}`` or
  ``{"id", "ok": False, "error": <type name>, "detail": str,
  "extra": {...}}``.

Errors cross the process boundary *structurally* (:func:`encode_error`
/ :func:`decode_error`) rather than as pickled exception objects:
several typed errors take constructor arguments that a generic
unpickle-by-args would mangle, and a worker must never be able to crash
the supervisor with an unpicklable exception instance.

The worker heartbeats into a shared ``multiprocessing.Value`` so the
supervisor can distinguish *dead* (process gone, pipe EOF) from *hung*
(alive but no heartbeat) and SIGKILL the latter before failing over.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    ServingError,
    SessionCorruptError,
    SessionExistsError,
    SessionMigratingError,
    SessionNotFoundError,
    WorkerCrashedError,
)
from repro.obs import OBS, TRACER, TraceContext, get_logger
from repro.runtime import Deadline

_LOG = get_logger("serving.shard")

#: Seconds between heartbeat writes inside the worker.
HEARTBEAT_INTERVAL = 0.2

#: Handler threads per worker (requests are numpy-bound; the inner
#: service's micro-batcher does its own fan-out on top).
WORKER_THREADS = 4


# ----------------------------------------------------------------------
# Structural error transport
# ----------------------------------------------------------------------
def encode_error(err: BaseException) -> Dict[str, Any]:
    """Flatten an exception into a pipe-safe structural payload."""
    extra: Dict[str, Any] = {}
    for attr in (
        "session_id",
        "queue_depth",
        "queue_limit",
        "deadline",
        "shard",
        "retry_after",
    ):
        value = getattr(err, attr, None)
        if isinstance(value, (int, float, str, bool)):
            extra[attr] = value
    return {
        "error": type(err).__name__,
        "detail": str(err),
        "extra": extra,
    }


_DECODERS = {
    "SessionNotFoundError": lambda d, x: SessionNotFoundError(
        x.get("session_id", "?")
    ),
    "SessionExistsError": lambda d, x: SessionExistsError(
        x.get("session_id", "?")
    ),
    "SessionCorruptError": lambda d, x: SessionCorruptError(
        x.get("session_id", "?")
    ),
    "SessionMigratingError": lambda d, x: SessionMigratingError(
        x.get("session_id", "?")
    ),
    "ServiceOverloadedError": lambda d, x: ServiceOverloadedError(
        int(x.get("queue_depth", 0)),
        int(x.get("queue_limit", 0)),
        x.get("retry_after"),
    ),
    "DeadlineExceededError": lambda d, x: DeadlineExceededError(
        float(x.get("deadline", 0.0))
    ),
    "ServiceUnavailableError": lambda d, x: ServiceUnavailableError(d),
    "WorkerCrashedError": lambda d, x: WorkerCrashedError(
        int(x.get("shard", -1)), d
    ),
    "DataValidationError": lambda d, x: DataValidationError(d),
    "ConfigurationError": lambda d, x: ConfigurationError(d),
    "ServingError": lambda d, x: ServingError(d),
}


def decode_error(payload: Dict[str, Any]) -> BaseException:
    """Rebuild the typed exception a worker encoded.

    Unknown types (a bug's ``ValueError``, ...) decode to a plain
    ``RuntimeError`` so they keep counting as *internal* failures in the
    supervisor's taxonomy instead of masquerading as client errors.
    """
    name = payload.get("error", "RuntimeError")
    detail = payload.get("detail", "")
    extra = payload.get("extra", {}) or {}
    decoder = _DECODERS.get(name)
    if decoder is not None:
        return decoder(detail, extra)
    return RuntimeError(f"shard worker error ({name}): {detail}")


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _handle(service, msg: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one RPC against the worker's in-process service."""
    request_id = msg.get("id")
    expires_at = msg.get("expires_at")
    deadline = (
        Deadline.at(float(expires_at)) if expires_at is not None else None
    )
    ctx = (
        TraceContext.from_wire(msg.get("trace"))
        if TRACER.enabled else None
    )
    if ctx is not None:
        # Re-root the supervisor's trace in this process: everything the
        # service records below nests under one ``worker.handle`` span.
        with TRACER.span("worker.handle", parent=ctx, op=msg.get("op")):
            return _dispatch(service, msg, request_id, deadline)
    return _dispatch(service, msg, request_id, deadline)


def _dispatch(
    service,
    msg: Dict[str, Any],
    request_id,
    deadline: Optional[Deadline],
) -> Dict[str, Any]:
    try:
        if deadline is not None and deadline.expired():
            # Shed before touching the service: the client (or the
            # supervisor retrying on its behalf) has already given up.
            raise DeadlineExceededError(service.config.deadline)
        op = msg.get("op")
        args = msg.get("args", {}) or {}
        if op == "observe":
            result = service.observe(
                args["session_id"],
                args["value"],
                seq=args.get("seq"),
                deadline=deadline,
            )
        elif op == "predict":
            result = service.predict(
                args["session_id"], deadline=deadline
            )
        elif op == "create":
            result = service.create_session(
                args["session_id"],
                args["history"],
                **args.get("session_kwargs", {}),
            )
        elif op == "info":
            result = service.session_info(args["session_id"])
        elif op == "close":
            service.close_session(args["session_id"])
            result = {"closed": args["session_id"]}
        elif op == "release":
            result = service.release_session(
                args["session_id"], timeout=args.get("timeout", 5.0)
            )
        elif op == "adopt":
            result = service.adopt_session(args["session_id"])
        elif op == "sessions":
            result = service.session_ids()
        elif op == "load":
            result = service.load_stats()
        elif op == "health":
            result = service.health()
        elif op == "stats":
            result = service.stats()
        elif op == "metrics":
            result = service.metrics_snapshot()
        elif op == "ping":
            result = {"pong": True}
        else:
            raise ServingError(f"unknown shard op: {op!r}")
        return {"id": request_id, "ok": True, "result": result}
    except BaseException as err:  # noqa: BLE001 - transported to parent
        return {"id": request_id, "ok": False, **encode_error(err)}


def worker_main(shard_index: int, conn, heartbeat, bundle, config) -> None:
    """Entry point of one shard worker process (runs until shutdown).

    ``conn`` is the child end of a duplex pipe; ``heartbeat`` a shared
    ``Value('d')`` this process keeps stamping with ``time.monotonic()``.
    """
    # The supervisor owns lifecycle: a terminal Ctrl-C must not tear
    # down workers mid-request before the parent has drained them.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.serving.service import ForecastService

    trace_dir = getattr(config, "trace_dir", None)
    if trace_dir:
        # Each incarnation writes its own file (the name embeds the
        # pid), so a failover never interleaves two workers' spans.
        TRACER.enable(trace_dir, f"shard-{shard_index}")
    if getattr(config, "worker_telemetry", False) and not OBS.enabled:
        # Registry-only session (no sinks): counters/histograms for the
        # supervisor's merged /metrics without any file I/O here.
        from repro.obs import TelemetryConfig, configure

        configure(TelemetryConfig(enabled=True))

    service = ForecastService(bundle, config)
    stop = threading.Event()
    send_lock = threading.Lock()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(HEARTBEAT_INTERVAL)

    heartbeat.value = time.monotonic()
    threading.Thread(
        target=beat, name=f"repro-shard-{shard_index}-beat", daemon=True
    ).start()

    def respond(msg: Dict[str, Any]) -> None:
        response = _handle(service, msg)
        with send_lock:
            try:
                conn.send(response)
            except (OSError, BrokenPipeError):  # parent gone
                stop.set()

    pool = ThreadPoolExecutor(
        max_workers=WORKER_THREADS,
        thread_name_prefix=f"repro-shard-{shard_index}",
    )
    _LOG.info("shard %d worker ready (pid will heartbeat)", shard_index)
    try:
        while not stop.is_set():
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                # Supervisor died or closed the pipe: drain and exit.
                _LOG.warning(
                    "shard %d: control pipe closed; shutting down",
                    shard_index,
                )
                break
            if not isinstance(msg, dict):
                continue
            if msg.get("op") == "__shutdown__":
                pool.shutdown(wait=True)
                summary = service.shutdown()
                with send_lock:
                    try:
                        conn.send(
                            {"id": msg.get("id"), "ok": True,
                             "result": summary}
                        )
                    except (OSError, BrokenPipeError):
                        pass
                return
            pool.submit(respond, msg)
    finally:
        stop.set()
        pool.shutdown(wait=False)
        service.shutdown()
        # multiprocessing children exit via os._exit (no atexit), so the
        # tracer's drop-count meta line must be flushed here.
        TRACER.disable()
