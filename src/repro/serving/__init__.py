"""Multi-tenant online forecasting service (paper Alg. 1 as a server).

Hosts many concurrent EA-DRL online-forecasting sessions in one
process, stdlib + numpy only:

- :class:`SeriesSession` — per-series resumable online state; the
  ``observe(y_t) -> forecast`` step API that
  :meth:`repro.core.EADRL.rolling_forecast_online` also drives (one
  shared code path, bit-identical outputs);
- :class:`ModelBundle` — fitted artefacts shared across tenants plus
  per-session policy-agent cloning;
- :class:`SessionStore` — bounded LRU with checkpoint-backed spill to
  disk; eviction + re-admission is bit-identical;
- :class:`MicroBatcher` — coalesces concurrent one-step requests and
  fans them through :mod:`repro.runtime.executor`;
- :class:`ForecastService` — the transport-agnostic core with admission
  control, per-request deadlines, and a service circuit breaker;
- :class:`ShardSupervisor` / :func:`make_service` — supervised shard
  *worker processes* (consistent hashing on session id, heartbeat
  monitoring, crash failover from the spill tier, per-shard restart
  breakers) behind the same operation surface as the in-process
  service;
- :class:`HashRing` / :class:`Rebalancer` / :class:`ScalingController`
  — the elastic half of the shard runtime: versioned weighted ring,
  live resize with zero-loss session migration, and load-adaptive
  scaling with hysteresis and a rebalance circuit breaker;
- :class:`ForecastHTTPServer` — stdlib JSON-over-HTTP frontend
  (``repro serve``);
- :class:`TenantAccountant` — bounded-cardinality per-tenant request
  accounting surfaced on ``/stats`` (mergeable across shard workers);
- :class:`GracefulShutdown` — SIGTERM/SIGINT latch flushing checkpoints
  and telemetry sinks.

See ``docs/serving.md`` for architecture, protocol, and a runbook.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.bundle import ModelBundle, session_seed
from repro.serving.http import ForecastHTTPServer
from repro.serving.lifecycle import GracefulShutdown
from repro.serving.rebalance import (
    Migration,
    MigrationReport,
    Rebalancer,
    ScalingConfig,
    ScalingController,
    ShardLoad,
    plan_migrations,
)
from repro.serving.ring import HashRing
from repro.serving.service import ForecastService, ServiceConfig
from repro.serving.session import SeriesSession
from repro.serving.store import (
    DegradedSession,
    SessionStore,
    validate_session_id,
)
from repro.serving.supervisor import (
    ShardSupervisor,
    make_service,
)
from repro.serving.tenantstats import TenantAccountant

__all__ = [
    "DegradedSession",
    "ForecastHTTPServer",
    "ForecastService",
    "GracefulShutdown",
    "HashRing",
    "MicroBatcher",
    "Migration",
    "MigrationReport",
    "ModelBundle",
    "Rebalancer",
    "ScalingConfig",
    "ScalingController",
    "SeriesSession",
    "ServiceConfig",
    "SessionStore",
    "ShardLoad",
    "ShardSupervisor",
    "TenantAccountant",
    "make_service",
    "plan_migrations",
    "session_seed",
    "validate_session_id",
]
