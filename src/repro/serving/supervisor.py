"""Supervised shard workers with crash failover and consistent hashing.

:class:`ShardSupervisor` is the process-isolated sibling of
:class:`~repro.serving.service.ForecastService` — same five operations,
same error taxonomy, same HTTP frontend — but sessions live in N shard
*worker processes* (:mod:`repro.serving.shard`), partitioned by
consistent hashing on the session id:

- **placement** — a :class:`HashRing` (CRC32, virtual nodes) maps every
  session id to one shard; a session's spill directory lives under that
  shard's subtree, so the mapping survives restarts of both sides;
- **liveness** — each worker heartbeats into shared memory; a monitor
  thread detects *dead* workers (``is_alive()`` false / pipe EOF)
  and *hung* ones (stale heartbeat → ``SIGKILL``), then fails over;
- **failover** — all requests pending on a dead worker fail fast with
  :class:`~repro.exceptions.WorkerCrashedError`; a replacement worker is
  spawned on the same shard + spill directory and re-adopts the spilled
  sessions lazily. Workers run *durable* services (observe is
  acknowledged only after the checkpoint hits disk), so an acknowledged
  observation is never lost to a crash and a failed-over session is
  bit-identical to one that never crashed;
- **retries** — idempotent operations (sequence-numbered ``observe``,
  ``predict``, ``info``, ``close``) are retried against the replacement
  worker under a jittered-backoff :class:`~repro.runtime.RetryPolicy`
  clamped to the request's remaining :class:`~repro.runtime.Deadline`;
  a non-idempotent ``observe`` (no ``seq``) is attempted exactly once;
- **crash-loop protection** — a per-shard
  :class:`~repro.runtime.CircuitBreaker` counts crashes; a shard that
  keeps dying is left down for a cooldown (its requests fail fast with
  :class:`~repro.exceptions.ServiceUnavailableError`) instead of
  fork-bombing the host.

The fleet is **elastic**: :meth:`ShardSupervisor.resize` grows or
shrinks the shard count live (``POST /admin/resize``), migrating only
the ~K/n sessions whose ring ownership changes — drained, renamed
atomically between spill subtrees, and adopted by their new worker
while requests for them park against their deadlines
(:mod:`repro.serving.rebalance`). The committed/pending ring is
journalled to ``ring.json`` under the spill root, so a crash at any
migration step recovers onto one well-defined ownership map. With
``autoscale`` enabled, a :class:`~repro.serving.rebalance.ScalingController`
in the monitor thread turns per-shard load samples into the same
resize/hot-shard-rebalance calls, behind hysteresis, a cooldown, and a
rebalance circuit breaker.

Construct through :func:`make_service`, which picks this runtime when
``ServiceConfig.executor == "process"`` or ``shards > 0``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    ServiceUnavailableError,
    SessionExistsError,
    SessionMigratingError,
    SessionNotFoundError,
    WorkerCrashedError,
)
from repro.obs import (
    OBS,
    TRACER,
    get_logger,
    merge_snapshots,
    render_prom_snapshot,
)
from repro.persistence import atomic_write_bytes
from repro.runtime import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    coerce_deadline,
)
from repro.serving.rebalance import (
    Rebalancer,
    ScalingConfig,
    ScalingController,
    ShardLoad,
)
from repro.serving.ring import VNODES, HashRing
from repro.serving.service import ForecastService, ServiceConfig
from repro.serving.shard import decode_error, worker_main
from repro.serving.store import SESSION_ID_PATTERN, validate_session_id
from repro.serving.tenantstats import TenantAccountant

_LOG = get_logger("serving.supervisor")

__all__ = ["HashRing", "ShardSupervisor", "VNODES", "make_service"]

#: Monitor cadence and heartbeat staleness bound (seconds).
MONITOR_INTERVAL = 0.25
HEARTBEAT_TIMEOUT = 5.0

#: A worker alive this long after (re)spawn counts as stable again.
STABILITY_WINDOW = 5.0

#: Crashes tripping a shard's restart breaker, and monitor ticks
#: absorbed while OPEN before a restart probe.
CRASH_THRESHOLD = 5
CRASH_COOLDOWN_TICKS = 40

#: Jittered exponential backoff between consecutive respawns of the
#: same crash-looping shard (a stable worker's first crash still
#: respawns immediately — failover latency is the point of the runtime).
RESPAWN_BACKOFF_BASE = 0.25
RESPAWN_BACKOFF_MAX = 5.0

#: Hard cap on how long a request parks waiting for a mid-migration
#: session handoff, independent of its own (possibly unbounded)
#: deadline. A migration takes milliseconds; ten seconds means the
#: rebalancer wedged, and the request should fail retryably.
PARK_WAIT_CAP = 10.0

#: Consecutive failed rebalances tripping the rebalance breaker (policy
#: resizes are suppressed while it is open; operators can force).
REBALANCE_BREAKER_THRESHOLD = 3

#: Hot-shard rebalancing never drops a shard's ring weight below this.
MIN_SHARD_WEIGHT = 0.25

#: Name of the ring journal inside the spill root.
RING_JOURNAL = "ring.json"


def _mp_context():
    """Fork when available (shares the fitted bundle copy-on-write;
    POSIX-only), else the platform default."""
    method = os.environ.get("REPRO_SHARD_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


class _Shard:
    """Supervisor-side handle of one worker incarnation chain."""

    def __init__(self, index: int, spill_dir: str):
        self.index = index
        self.spill_dir = spill_dir
        self.lock = threading.Lock()
        self.process = None
        self.conn = None
        self.heartbeat = None
        self.reader: Optional[threading.Thread] = None
        self.pending: Dict[int, Future] = {}
        self.generation = 0
        self.spawned_at = 0.0
        self.stable = False
        self.alive = False
        self.closing = False
        # Consecutive crashes without an intervening stable window, and
        # the monotonic time before which the monitor must not respawn
        # (jittered exponential backoff against crash loops).
        self.crashes_in_row = 0
        self.next_respawn_at = 0.0
        self.breaker = CircuitBreaker(
            failure_threshold=CRASH_THRESHOLD,
            cooldown_steps=CRASH_COOLDOWN_TICKS,
        )


class ShardSupervisor:
    """Process-isolated, crash-tolerant drop-in for ForecastService."""

    def __init__(
        self,
        bundle,
        config: Optional[ServiceConfig] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
    ):
        self.config = config if config is not None else ServiceConfig(
            executor="process"
        )
        self.config.validate()
        self.bundle = bundle
        self.n_shards = self.config.shards or max(
            2, min(4, os.cpu_count() or 2)
        )
        if getattr(self.config, "autoscale", False):
            self.n_shards = max(
                self.config.min_shards,
                min(self.config.max_shards, self.n_shards),
            )
        spill_root = self.config.spill_dir
        if spill_root is None:
            spill_root = tempfile.mkdtemp(prefix="repro-shards-")
            _LOG.info("no spill_dir configured; using %s", spill_root)
        self.spill_root = spill_root
        # Elastic-runtime state: the live (committed) ring, the pending
        # ring during a transition, per-session routing overrides, and
        # the park events requests wait on while their session migrates.
        self._route_lock = threading.Lock()
        self._ring_next: Optional[HashRing] = None
        self._overrides: Dict[str, int] = {}
        self._migrating: Dict[str, threading.Event] = {}
        self._resize_lock = threading.Lock()
        self._rebalance_breaker = CircuitBreaker(
            failure_threshold=REBALANCE_BREAKER_THRESHOLD,
            cooldown_steps=CRASH_COOLDOWN_TICKS,
        )
        self.resizes = 0
        self.respawn_backoffs = 0
        # The ring journal (and the spill tree it describes) outranks
        # the configured shard count: placement must match where the
        # session directories actually are.
        self.ring = self._recover_ring()
        self.rebalancer = Rebalancer(self)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.retry_policy.validate()
        self.heartbeat_timeout = float(heartbeat_timeout)
        self._owns_tracer = False
        if self.config.trace_dir and not TRACER.enabled:
            # The supervisor process is the request frontend; workers
            # enable their own tracers (role ``shard-<i>``) on spawn.
            TRACER.enable(self.config.trace_dir, "frontend")
            self._owns_tracer = True
        self._ctx = _mp_context()
        self._rng = np.random.default_rng(0xC0FFEE)
        self._request_ids = iter(range(1, 1 << 62)).__next__
        self._id_lock = threading.Lock()
        self._shutting_down = threading.Event()
        self._started_at = time.time()
        self.restarts = 0
        self._shards = [
            _Shard(i, self.shard_spill_dir(i))
            for i in range(self.n_shards)
        ]
        for shard in self._shards:
            self._spawn_locked(shard)
        self._scaler: Optional[ScalingController] = None
        self._scale_busy = threading.Event()
        if getattr(self.config, "autoscale", False):
            self._scaler = ScalingController(ScalingConfig(
                min_shards=self.config.min_shards,
                max_shards=self.config.max_shards,
            ))
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="repro-shard-monitor",
            daemon=True,
        )
        self._monitor.start()
        self._ring_gauges()
        _LOG.info(
            "shard supervisor up: %d worker(s) (ring v%d%s), spill root %s",
            self.n_shards, self.ring.version,
            ", autoscale" if self._scaler is not None else "",
            spill_root,
        )

    # ------------------------------------------------------------------
    # Ring journal: crash-safe persistence and startup reconciliation
    # ------------------------------------------------------------------
    def shard_spill_dir(self, index: int) -> str:
        """Spill subtree of one shard (directory location == ownership)."""
        return os.path.join(self.spill_root, f"shard-{index:02d}")

    def _persist_ring(
        self, committed: HashRing, pending: Optional[HashRing] = None
    ) -> None:
        """Journal the ring state (atomic + fsynced).

        During a transition the journal holds both rings; recovery
        adopts the *pending* one — every migration renames toward it,
        so finishing the move forward is always safe, while rolling
        back could orphan already-renamed sessions.
        """
        payload: Dict[str, Any] = {"committed": committed.to_dict()}
        if pending is not None:
            payload["pending"] = pending.to_dict()
        atomic_write_bytes(
            Path(self.spill_root) / RING_JOURNAL,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def _recover_ring(self) -> HashRing:
        """Load the journalled ring and heal the spill tree to match it.

        Runs before any worker spawns, so renaming session directories
        is race-free. A crash at any point mid-migration leaves each
        session directory in exactly one shard subtree (``os.rename``
        is atomic); reconciliation moves every directory to the shard
        the recovered ring says owns it, restoring the invariant that
        routing and durable state agree.
        """
        path = Path(self.spill_root) / RING_JOURNAL
        ring: Optional[HashRing] = None
        if path.exists():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                pending = payload.get("pending")
                target = pending or payload.get("committed")
                if target:
                    ring = HashRing.from_dict(target)
                    if pending:
                        _LOG.warning(
                            "recovering interrupted resize: adopting "
                            "pending ring v%d", ring.version,
                        )
            except (OSError, ValueError, KeyError, TypeError) as err:
                _LOG.error(
                    "unreadable ring journal %s (%s); starting from the "
                    "configured shard count", path, err,
                )
        if ring is None:
            ring = HashRing(self.n_shards)
        elif ring.n_shards != self.n_shards:
            _LOG.warning(
                "ring journal says %d shard(s), config says %d; the "
                "journal wins (placement must match the spill tree)",
                ring.n_shards, self.n_shards,
            )
            self.n_shards = ring.n_shards
        self._reconcile_spill_tree(ring)
        self._persist_ring(ring)
        return ring

    def _reconcile_spill_tree(self, ring: HashRing) -> None:
        """Move every session directory under its ring owner's subtree."""
        root = Path(self.spill_root)
        if not root.is_dir():
            return
        moved = 0
        for sub in sorted(root.iterdir()):
            if not sub.is_dir() or not sub.name.startswith("shard-"):
                continue
            try:
                index = int(sub.name.split("-", 1)[1])
            except ValueError:
                continue
            for sess in sorted(sub.iterdir()):
                if not sess.is_dir() or not SESSION_ID_PATTERN.match(
                    sess.name
                ):
                    continue
                owner = ring.shard_for(sess.name)
                if owner == index:
                    continue
                dst = Path(self.shard_spill_dir(owner)) / sess.name
                if dst.exists():
                    # Cannot happen if the rename protocol held; never
                    # delete data — park the stray under a name the
                    # session-id pattern rejects so no store adopts it.
                    try:
                        os.rename(sess, sess.with_name(sess.name + "~stray"))
                        _LOG.error(
                            "session %s found in two shard subtrees; "
                            "kept shard %d's copy, parked shard %d's as "
                            "%s~stray", sess.name, owner, index, sess.name,
                        )
                    except OSError:  # pragma: no cover - stray of a stray
                        pass
                    continue
                dst.parent.mkdir(parents=True, exist_ok=True)
                os.rename(sess, dst)
                moved += 1
        if moved:
            _LOG.info(
                "ring recovery moved %d session directorie(s) to their "
                "ring owners", moved,
            )

    def _ring_gauges(self) -> None:
        if OBS.enabled:
            OBS.registry.gauge("repro_serving_ring_version").set(
                float(self.ring.version)
            )
            OBS.registry.gauge("repro_serving_shards").set(
                float(self.n_shards)
            )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _worker_config(self, shard: _Shard) -> ServiceConfig:
        # Workers always run durable thread-executor services: the
        # ack-after-checkpoint write-through is what makes failover
        # lossless for acknowledged observations. ``trace_dir`` rides
        # along via ``replace``; workers get a registry-only telemetry
        # session whenever the supervisor's is live (or tracing is on)
        # so ``/metrics`` can merge every shard's snapshot.
        return replace(
            self.config,
            executor="thread",
            shards=0,
            durable=True,
            spill_dir=shard.spill_dir,
            worker_telemetry=(
                self.config.worker_telemetry
                or OBS.enabled
                or bool(self.config.trace_dir)
            ),
        )

    def _spawn_locked(self, shard: _Shard) -> None:
        """Start a fresh worker incarnation (caller serialises)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._ctx.Value("d", time.monotonic(), lock=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                shard.index,
                child_conn,
                heartbeat,
                self.bundle,
                self._worker_config(shard),
            ),
            name=f"repro-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # child's end lives in the child only
        shard.process = process
        shard.conn = parent_conn
        shard.heartbeat = heartbeat
        shard.generation += 1
        shard.spawned_at = time.monotonic()
        shard.stable = False
        shard.alive = True
        generation = shard.generation
        shard.reader = threading.Thread(
            target=self._reader_loop,
            args=(shard, parent_conn, generation),
            name=f"repro-shard-{shard.index}-reader",
            daemon=True,
        )
        shard.reader.start()
        _LOG.info(
            "shard %d: worker generation %d started (pid %s)",
            shard.index, generation, process.pid,
        )

    def _reader_loop(self, shard: _Shard, conn, generation: int) -> None:
        """Resolve pending futures from one incarnation's pipe."""
        while True:
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                # SIGKILL mid-send, worker exit, or our own close().
                break
            if not isinstance(payload, dict):
                continue
            with shard.lock:
                future = shard.pending.pop(payload.get("id"), None)
            if future is not None and not future.done():
                future.set_result(payload)
        if not shard.closing:
            self._on_worker_death(shard, generation, "pipe closed")

    def _on_worker_death(
        self, shard: _Shard, generation: int, why: str
    ) -> None:
        """Fail over one incarnation: fail its pending, maybe respawn."""
        with shard.lock:
            if shard.generation != generation or not shard.alive:
                return  # stale notification from a replaced incarnation
            shard.alive = False
            pending = list(shard.pending.values())
            shard.pending.clear()
            shard.breaker.record_failure()
            try:
                shard.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        _LOG.error(
            "shard %d: worker generation %d died (%s); failing %d "
            "in-flight request(s)",
            shard.index, generation, why, len(pending),
        )
        for future in pending:
            if not future.done():
                # Futures carry raw payload dicts; a None payload is
                # translated to WorkerCrashedError at the call site.
                future.set_result(None)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_serving_worker_crashes_total",
                {"shard": str(shard.index)},
            ).inc()
        if self._shutting_down.is_set():
            return
        with shard.lock:
            # A stable worker's first crash fails over immediately (the
            # runtime's whole point); a worker that keeps dying inside
            # its stability window gets jittered exponential backoff so
            # a crash loop cannot spin the monitor thread hot.
            shard.crashes_in_row = (
                1 if shard.stable else shard.crashes_in_row + 1
            )
            if shard.crashes_in_row <= 1:
                shard.next_respawn_at = 0.0
                if shard.breaker.allow():
                    self.restarts += 1
                    self._spawn_locked(shard)
                return
            crashes = shard.crashes_in_row
            backoff = min(
                RESPAWN_BACKOFF_MAX,
                RESPAWN_BACKOFF_BASE * 2.0 ** (crashes - 2),
            ) * float(self._rng.uniform(0.5, 1.5))
            shard.next_respawn_at = time.monotonic() + backoff
            self.respawn_backoffs += 1
        _LOG.warning(
            "shard %d: %d consecutive crash(es); delaying respawn %.2fs",
            shard.index, crashes, backoff,
        )
        if OBS.enabled:
            OBS.registry.counter(
                "repro_serving_respawn_backoffs_total",
                {"shard": str(shard.index)},
            ).inc()
            OBS.emit(
                "shard_respawn_backoff",
                shard=shard.index,
                crashes=crashes,
                backoff_seconds=round(backoff, 3),
            )

    def _monitor_loop(self) -> None:
        """Detect dead and hung workers; restart when the breaker lets us."""
        while not self._shutting_down.wait(MONITOR_INTERVAL):
            now = time.monotonic()
            for shard in list(self._shards):
                with shard.lock:
                    alive = shard.alive
                    closing = shard.closing
                    process = shard.process
                    generation = shard.generation
                    heartbeat = (
                        shard.heartbeat.value
                        if shard.heartbeat is not None else now
                    )
                    spawned_at = shard.spawned_at
                if closing:
                    continue  # retired by a ring shrink (or shutdown)
                if not alive:
                    # Down shard: probe the restart breaker each tick so
                    # OPEN cools down and HALF_OPEN eventually retries;
                    # a crash-looping shard additionally waits out its
                    # jittered respawn backoff.
                    with shard.lock:
                        if (
                            not shard.alive
                            and not shard.closing
                            and now >= shard.next_respawn_at
                            and shard.breaker.allow()
                        ):
                            self.restarts += 1
                            self._spawn_locked(shard)
                    continue
                if process is not None and not process.is_alive():
                    self._on_worker_death(
                        shard, generation, "process exited"
                    )
                    continue
                if now - heartbeat > self.heartbeat_timeout:
                    _LOG.error(
                        "shard %d: heartbeat stale for %.1fs; killing "
                        "hung worker",
                        shard.index, now - heartbeat,
                    )
                    try:
                        process.kill()
                    except (OSError, AttributeError):
                        pass
                    # The reader's EOF triggers the actual failover.
                    continue
                if (
                    not shard.stable
                    and now - spawned_at > STABILITY_WINDOW
                ):
                    with shard.lock:
                        shard.stable = True
                        shard.crashes_in_row = 0
                        shard.breaker.record_success()
            if (
                self._scaler is not None
                and self._scaler.due()
                and not self._scale_busy.is_set()
            ):
                # Load gathering and migrations must not stall the
                # heartbeat watchdog; run the tick off-thread.
                self._scale_busy.set()
                threading.Thread(
                    target=self._autoscale_tick,
                    name="repro-shard-autoscale",
                    daemon=True,
                ).start()

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._id_lock:
            return self._request_ids()

    def _call_shard(
        self, shard: _Shard, op: str, args: Dict[str, Any], dl: Deadline
    ) -> Any:
        """One attempt against one shard; raises typed errors."""
        span = TRACER.child_span("rpc.shard", shard=shard.index, op=op)
        with span:
            request_id = self._next_id()
            future: Future = Future()
            envelope = {
                "id": request_id,
                "op": op,
                "args": args,
                "expires_at": None if dl.unbounded else dl.expires_at,
            }
            if span.ctx is not None:
                # The worker parents its ``worker.handle`` span here, so
                # the assembled trace crosses the process boundary.
                envelope["trace"] = span.ctx.to_wire()
            with shard.lock:
                if not shard.alive:
                    if shard.breaker.state is BreakerState.OPEN:
                        raise ServiceUnavailableError(
                            f"shard {shard.index} is crash-looping; its "
                            "restart breaker is open — retry later"
                        )
                    raise WorkerCrashedError(
                        shard.index, "worker is down (restarting)"
                    )
                shard.pending[request_id] = future
                try:
                    shard.conn.send(envelope)
                except (OSError, BrokenPipeError) as err:
                    shard.pending.pop(request_id, None)
                    raise WorkerCrashedError(
                        shard.index, f"send failed: {err}"
                    ) from None
            timeout = (
                self.config.deadline * 4
                if dl.unbounded
                else max(0.0, dl.remaining()) + self.config.deadline
            )
            try:
                payload = future.result(timeout=timeout)
            except FutureTimeoutError:
                with shard.lock:
                    shard.pending.pop(request_id, None)
                raise ServiceUnavailableError(
                    f"shard {shard.index} did not answer within the "
                    "deadline grace period"
                ) from None
            if payload is None:
                raise WorkerCrashedError(
                    shard.index, "worker died with this request in flight"
                )
            if payload.get("ok"):
                return payload["result"]
            raise decode_error(payload)

    def _route_index(
        self, session_id: str, dl: Deadline, *, creating: bool = False
    ) -> int:
        """The shard index a request should go to, right now.

        Honours (in priority order) the per-session park event of an
        in-flight migration — the request waits, bounded by its own
        deadline and :data:`PARK_WAIT_CAP`, instead of being dropped —
        then the per-session routing override (sessions moved ahead of
        ring commit, or pinned after a failed migration), then the
        committed ring. Creates arriving mid-transition are placed by
        the *pending* ring (with an override so they are reachable
        immediately): they must not land on a shard about to lose that
        slice of the keyspace.
        """
        cap = time.monotonic() + PARK_WAIT_CAP
        while True:
            with self._route_lock:
                event = self._migrating.get(session_id)
                if event is None:
                    override = self._overrides.get(session_id)
                    if override is not None:
                        return override
                    if creating and self._ring_next is not None:
                        index = self._ring_next.shard_for(session_id)
                        self._overrides[session_id] = index
                        return index
                    return self.ring.shard_for(session_id)
            if dl.expired():
                raise DeadlineExceededError()
            now = time.monotonic()
            if now >= cap:
                raise ServiceUnavailableError(
                    f"session {session_id!r} is mid-migration and its "
                    f"handoff did not complete within {PARK_WAIT_CAP:.0f}s"
                )
            timeout = cap - now
            if not dl.unbounded:
                timeout = min(timeout, max(0.0, dl.remaining()))
            event.wait(timeout)

    def _request(
        self,
        session_id: str,
        op: str,
        args: Dict[str, Any],
        *,
        deadline=None,
        idempotent: bool = True,
        creating: bool = False,
    ) -> Any:
        if self._shutting_down.is_set():
            raise ServiceUnavailableError(
                "shard supervisor is shutting down; refusing new requests"
            )
        validate_session_id(session_id)
        dl = coerce_deadline(deadline, self.config.deadline)

        def attempt():
            # Re-resolve the route on every attempt: between retries
            # the session may have finished migrating to another shard
            # (or its shard may have been replaced by failover).
            index = self._route_index(session_id, dl, creating=creating)
            return self._call_shard(self._shards[index], op, args, dl)

        def run():
            if not idempotent:
                return attempt()
            return self.retry_policy.call(
                attempt,
                retry_on=(WorkerCrashedError, SessionMigratingError),
                deadline=dl,
                rng=self._rng,
                on_retry=lambda n, err: _LOG.warning(
                    "retrying %s for session %s (attempt %d): %s",
                    op, session_id, n + 1, err,
                ),
            )

        # ``child_span`` keeps direct (non-HTTP) calls traceless rather
        # than minting orphan single-request traces.
        with TRACER.child_span(f"service.{op}", session=session_id):
            return run()

    # ------------------------------------------------------------------
    # ForecastService-parity operations
    # ------------------------------------------------------------------
    def create_session(
        self, session_id: str, history, **session_kwargs
    ) -> Dict[str, Any]:
        """Admit a new tenant series on its hash-ring shard.

        Retried on worker crash; if the retry then reports the session
        as already existing, the first attempt's create committed before
        the crash and the session's description is returned instead of a
        conflict (create is made idempotent for the retry path only).
        """
        attempts = {"n": 0}
        history_arr = np.asarray(history, dtype=np.float64)

        def run():
            attempts["n"] += 1
            return self._request(
                session_id,
                "create",
                {
                    "session_id": session_id,
                    "history": history_arr,
                    "session_kwargs": session_kwargs,
                },
                idempotent=False,  # retried here, with conflict handling
                creating=True,
            )

        try:
            return self.retry_policy.call(
                run,
                retry_on=(WorkerCrashedError, SessionMigratingError),
                deadline=coerce_deadline(None, self.config.deadline),
                rng=self._rng,
            )
        except SessionExistsError:
            if attempts["n"] > 1:
                return self.session_info(session_id)
            raise

    def observe(
        self,
        session_id: str,
        value: float,
        *,
        seq: Optional[int] = None,
        deadline=None,
    ) -> Dict[str, Any]:
        """Feed one realised value; crash-retried only when ``seq`` makes
        it idempotent (a retried duplicate returns the cached ack)."""
        return self._request(
            session_id,
            "observe",
            {"session_id": session_id, "value": float(value), "seq": seq},
            deadline=deadline,
            idempotent=seq is not None,
        )

    def predict(
        self, session_id: str, *, deadline=None
    ) -> Dict[str, Any]:
        return self._request(
            session_id,
            "predict",
            {"session_id": session_id},
            deadline=deadline,
        )

    def session_info(self, session_id: str) -> Dict[str, Any]:
        return self._request(
            session_id, "info", {"session_id": session_id}
        )

    def close_session(self, session_id: str) -> None:
        attempts = {"n": 0}

        def run():
            attempts["n"] += 1
            return self._request(
                session_id,
                "close",
                {"session_id": session_id},
                idempotent=False,
            )

        try:
            self.retry_policy.call(
                run,
                retry_on=(WorkerCrashedError, SessionMigratingError),
                rng=self._rng,
            )
        except SessionNotFoundError:
            if attempts["n"] > 1:
                with self._route_lock:
                    self._overrides.pop(session_id, None)
                return  # first attempt deleted it before the crash
            raise
        with self._route_lock:
            # A closed session needs no pin/override any more.
            self._overrides.pop(session_id, None)

    # ------------------------------------------------------------------
    # Elastic runtime: migration primitives (driven by the Rebalancer)
    # ------------------------------------------------------------------
    def known_session_ids(self) -> List[str]:
        """Every session the fleet answers for, from both sources.

        Workers report what they hold (covers created-but-never-synced
        sessions with no directory yet); the spill-tree scan covers
        shards that are down or crash-looping. Union, so a dead worker
        cannot hide sessions from a resize plan.
        """
        ids = set()
        for shard in list(self._shards):
            sub = Path(shard.spill_dir)
            if sub.is_dir():
                for child in sub.iterdir():
                    if child.is_dir() and SESSION_ID_PATTERN.match(
                        child.name
                    ):
                        ids.add(child.name)
            with shard.lock:
                alive = shard.alive
            if alive:
                try:
                    ids.update(self._call_shard(
                        shard, "sessions", {}, Deadline.from_budget(2.0)
                    ))
                except Exception:  # noqa: BLE001 - scan covers dead ones
                    pass
        return sorted(ids)

    def pinned_overrides(self) -> Dict[str, int]:
        """Sessions routed off-ring (pinned after a failed migration)."""
        with self._route_lock:
            return dict(self._overrides)

    def park_session(self, session_id: str) -> None:
        """Start double-routing: new requests wait for the handoff."""
        with self._route_lock:
            self._migrating.setdefault(session_id, threading.Event())

    def unpark_session(
        self, session_id: str, owner: Optional[int]
    ) -> None:
        """End double-routing; ``owner`` pins the session's route (or
        clears it when the session turned out not to exist at all)."""
        with self._route_lock:
            event = self._migrating.pop(session_id, None)
            if owner is None:
                self._overrides.pop(session_id, None)
            else:
                self._overrides[session_id] = owner
        if event is not None:
            event.set()

    def release_on_shard(
        self, index: int, session_id: str, *, timeout: float = 5.0
    ) -> Dict[str, Any]:
        """Quiesce + final durable checkpoint on the old owner.

        Retried across worker crashes: the store's release is
        idempotent, and a replacement worker (which re-adopted the
        spill subtree on spawn) answers the retry correctly.
        """
        shard = self._shards[index]
        dl = Deadline.from_budget(timeout + 15.0)
        return self.retry_policy.call(
            lambda: self._call_shard(
                shard, "release",
                {"session_id": session_id, "timeout": timeout}, dl,
            ),
            retry_on=(WorkerCrashedError,),
            deadline=dl,
            rng=self._rng,
        )

    def adopt_on_shard(self, index: int, session_id: str) -> bool:
        """Register the renamed spill directory with its new owner."""
        shard = self._shards[index]
        dl = Deadline.from_budget(15.0)
        return bool(self.retry_policy.call(
            lambda: self._call_shard(
                shard, "adopt", {"session_id": session_id}, dl,
            ),
            retry_on=(WorkerCrashedError,),
            deadline=dl,
            rng=self._rng,
        ))

    def begin_transition(self, new_ring: HashRing) -> None:
        """Journal the pending ring; creates start routing by it."""
        with self._route_lock:
            self._ring_next = new_ring
        self._persist_ring(self.ring, pending=new_ring)

    def commit_transition(
        self, new_ring: HashRing, pinned: List[Any]
    ) -> None:
        """Swap in the new ring and drop overrides it agrees with.

        Overrides that still disagree (failed migrations) stay pinned —
        the session keeps serving from wherever its directory is, and
        the next resize replans it. Shards the new ring dropped are
        retired, unless a pinned session still lives there (then the
        worker keeps draining).
        """
        with self._route_lock:
            self.ring = new_ring
            self._ring_next = None
            self.n_shards = new_ring.n_shards
            for sid in [
                sid for sid, index in self._overrides.items()
                if index == new_ring.shard_for(sid)
            ]:
                del self._overrides[sid]
        self._persist_ring(new_ring)
        self._ring_gauges()
        if pinned:
            _LOG.warning(
                "ring v%d committed with %d session(s) pinned off-ring "
                "after failed migrations", new_ring.version, len(pinned),
            )
        self._retire_excess_shards()

    def _retire_excess_shards(self) -> None:
        with self._route_lock:
            pinned_shards = set(self._overrides.values())
        for shard in list(self._shards)[self.n_shards:]:
            if shard.index in pinned_shards:
                _LOG.warning(
                    "shard %d left the ring but session(s) are pinned "
                    "to it; leaving its worker draining", shard.index,
                )
                continue
            self._stop_shard(shard)

    def _stop_shard(self, shard: _Shard) -> None:
        """Drain and reap one worker (ring shrink retirement)."""
        with shard.lock:
            if shard.closing and not shard.alive:
                return  # already retired
            shard.closing = True
            alive = shard.alive
            conn = shard.conn
        if alive and conn is not None:
            try:
                conn.send({"id": self._next_id(), "op": "__shutdown__"})
            except (OSError, BrokenPipeError):
                pass
        process = shard.process
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        with shard.lock:
            shard.alive = False
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        _LOG.info("shard %d retired (ring shrink)", shard.index)

    def _ensure_shards(self, n: int) -> None:
        """Spawn (or revive retired) workers for shard slots < ``n``."""
        while len(self._shards) < n:
            index = len(self._shards)
            self._shards.append(
                _Shard(index, self.shard_spill_dir(index))
            )
        for shard in list(self._shards)[:n]:
            with shard.lock:
                shard.closing = False
                if not shard.alive and not self._shutting_down.is_set():
                    shard.crashes_in_row = 0
                    shard.next_respawn_at = 0.0
                    self._spawn_locked(shard)

    # ------------------------------------------------------------------
    # Elastic runtime: operator/policy entry points
    # ------------------------------------------------------------------
    def _count_resize(self, kind: str) -> None:
        self.resizes += 1
        if OBS.enabled:
            OBS.registry.counter(
                "repro_serving_resizes_total", {"kind": kind}
            ).inc()

    def _check_rebalance_allowed(self, force: bool) -> None:
        if self._shutting_down.is_set():
            raise ServiceUnavailableError(
                "shard supervisor is shutting down; refusing resize"
            )
        if not force and not self._rebalance_breaker.allow():
            raise ServiceUnavailableError(
                "rebalance circuit breaker is open after repeated "
                "failed migrations; retry later or force"
            )

    def _finish_rebalance(self, kind: str, report) -> None:
        self._count_resize(kind)
        if report.ok:
            self._rebalance_breaker.record_success()
        else:
            self._rebalance_breaker.record_failure()
        if self._scaler is not None:
            self._scaler.record_action()

    def resize(
        self, n_shards: int, *, force: bool = False,
        reason: str = "operator",
    ) -> Dict[str, Any]:
        """Grow or shrink the fleet to ``n_shards``, migrating live.

        One resize/rebalance runs at a time; a second caller gets a
        retryable :class:`ServiceUnavailableError` instead of queueing
        behind a potentially long migration.
        """
        n = int(n_shards)
        if n < 1:
            raise ConfigurationError(
                f"cannot resize to {n} shard(s); need >= 1"
            )
        if not self._resize_lock.acquire(blocking=False):
            raise ServiceUnavailableError(
                "another resize/rebalance is already in progress"
            )
        try:
            self._check_rebalance_allowed(force)
            old = self.ring
            if n == old.n_shards and not force:
                return {"changed": False, "ring": old.describe()}
            kind = (
                "grow" if n > old.n_shards
                else "shrink" if n < old.n_shards else "rebalance"
            )
            new_ring = old.resized(n)
            if n > old.n_shards:
                # New workers must be serving before any session is
                # renamed into their subtrees.
                self._ensure_shards(n)
            report = self.rebalancer.execute(new_ring, f"{reason}:{kind}")
            self._finish_rebalance(kind, report)
            return {
                "changed": True,
                "kind": kind,
                "ring": self.ring.describe(),
                "report": report.to_dict(),
            }
        finally:
            self._resize_lock.release()

    def rebalance_shard(
        self, shard: Optional[int] = None, *, factor: float = 0.5,
        force: bool = False, reason: str = "operator",
    ) -> Dict[str, Any]:
        """Shed load off a hot shard by lowering its ring weight.

        Lowering a weight removes only that shard's highest-index
        vnodes, so the only sessions that move are sessions moving
        *off* the hot shard. ``shard=None`` picks the heaviest live
        shard by current load score.
        """
        if not 0.0 < factor < 1.0:
            raise ConfigurationError(
                f"rebalance factor must be in (0, 1), got {factor}"
            )
        if not self._resize_lock.acquire(blocking=False):
            raise ServiceUnavailableError(
                "another resize/rebalance is already in progress"
            )
        try:
            self._check_rebalance_allowed(force)
            if shard is None:
                alive = [
                    load for load in self._gather_loads() if load.alive
                ]
                if not alive:
                    raise ServiceUnavailableError(
                        "no live shard to rebalance"
                    )
                shard = max(alive, key=lambda load: load.score()).shard
            index = int(shard)
            if not 0 <= index < self.ring.n_shards:
                raise ConfigurationError(
                    f"shard {index} outside ring of {self.ring.n_shards}"
                )
            weight = self.ring.weights[index]
            new_weight = max(MIN_SHARD_WEIGHT, weight * factor)
            if new_weight >= weight:
                return {
                    "changed": False,
                    "reason": f"shard {index} weight already at floor",
                    "ring": self.ring.describe(),
                }
            new_ring = self.ring.reweighted(index, new_weight)
            report = self.rebalancer.execute(
                new_ring, f"{reason}:hot-shard-{index}"
            )
            self._finish_rebalance("rebalance", report)
            return {
                "changed": True,
                "kind": "rebalance",
                "shard": index,
                "weight": new_weight,
                "ring": self.ring.describe(),
                "report": report.to_dict(),
            }
        finally:
            self._resize_lock.release()

    def ring_info(self) -> Dict[str, Any]:
        """Operator view of the ring (``GET /admin/ring``)."""
        with self._route_lock:
            info = self.ring.describe()
            info["transition"] = (
                self._ring_next.describe()
                if self._ring_next is not None else None
            )
            info["overrides"] = dict(self._overrides)
            info["migrating"] = sorted(self._migrating)
        info["draining"] = [
            shard.index for shard in list(self._shards)[self.n_shards:]
            if shard.alive
        ]
        info["resizes"] = self.resizes
        return info

    # ------------------------------------------------------------------
    # Elastic runtime: load-adaptive scaling
    # ------------------------------------------------------------------
    def _gather_loads(self) -> List[ShardLoad]:
        loads = []
        now = time.monotonic()
        for shard in list(self._shards)[: self.n_shards]:
            with shard.lock:
                alive = shard.alive
                heartbeat = (
                    shard.heartbeat.value
                    if shard.heartbeat is not None else now
                )
            load = ShardLoad(
                shard=shard.index,
                alive=alive,
                heartbeat_age=max(0.0, now - heartbeat),
            )
            if alive:
                try:
                    payload = self._call_shard(
                        shard, "load", {}, Deadline.from_budget(1.0)
                    )
                    load.queue_depth = int(payload.get("queue_depth", 0))
                    load.sessions = int(payload.get("sessions", 0))
                except Exception:  # noqa: BLE001 - sample best-effort
                    load.alive = False
            loads.append(load)
        return loads

    def _autoscale_tick(self) -> None:
        try:
            decision = self._scaler.observe(
                self.n_shards, self._gather_loads()
            )
            if decision is None:
                return
            if not self._rebalance_breaker.allow():
                _LOG.warning(
                    "autoscale decision %r suppressed: rebalance "
                    "breaker is open", decision["action"],
                )
                return
            _LOG.info(
                "autoscale: %s (%s)",
                decision["action"], decision["reason"],
            )
            try:
                if decision["action"] == "rebalance":
                    self.rebalance_shard(
                        decision["shard"], reason="autoscale"
                    )
                else:
                    self.resize(decision["shards"], reason="autoscale")
            except (ServiceUnavailableError, ConfigurationError) as err:
                _LOG.warning("autoscale action skipped: %s", err)
        except Exception as err:  # noqa: BLE001 - monitor must survive
            _LOG.error("autoscale tick failed: %s", err)
        finally:
            self._scale_busy.clear()

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        shards = []
        up = 0
        now = time.monotonic()
        for shard in list(self._shards):
            with shard.lock:
                alive = shard.alive
                closing = shard.closing
                breaker_state = shard.breaker.state
                generation = shard.generation
                stable = shard.stable
                heartbeat = (
                    shard.heartbeat.value
                    if shard.heartbeat is not None else None
                )
            in_ring = shard.index < self.n_shards
            if not in_ring and not alive:
                continue  # retired by a ring shrink
            if alive:
                if in_ring:
                    up += 1
                state = "alive" if in_ring else "draining"
            elif closing:
                state = "stopping"
            elif breaker_state is BreakerState.OPEN:
                state = "breaker_open"
            else:
                state = "restarting"
            shards.append(
                {
                    "shard": shard.index,
                    "alive": alive,
                    "state": state,
                    "stable": stable,
                    "generation": generation,
                    "breaker": breaker_state.value,
                    "heartbeat_age_seconds": (
                        round(max(0.0, now - heartbeat), 3)
                        if alive and heartbeat is not None
                        else None
                    ),
                }
            )
        if self._shutting_down.is_set():
            status = "unavailable"
        elif up == self.n_shards:
            status = "ok"
        elif up > 0:
            status = "degraded"
        else:
            status = "unavailable"
        return {
            "status": status,
            "shards": shards,
            "shards_up": up,
            "shards_total": self.n_shards,
            "ring_version": self.ring.version,
            "restarts": self.restarts,
            "resizes": self.resizes,
            "shutting_down": self._shutting_down.is_set(),
            "uptime_seconds": round(time.time() - self._started_at, 3),
        }

    def stats(self) -> Dict[str, Any]:
        per_shard = {}
        for shard in list(self._shards):
            with shard.lock:
                if shard.closing and not shard.alive:
                    continue  # retired by a ring shrink
            try:
                per_shard[str(shard.index)] = self._call_shard(
                    shard, "stats", {}, Deadline.from_budget(1.0)
                )
            except Exception as err:  # noqa: BLE001 - stats best-effort
                per_shard[str(shard.index)] = {"error": str(err)}
        # Shards partition tenants by the hash ring, so the fleet-wide
        # per-tenant view is a bounded merge of per-shard snapshots.
        tenants = TenantAccountant.merge(
            [
                shard_stats.get("tenants", {})
                for shard_stats in per_shard.values()
                if isinstance(shard_stats, dict)
            ]
        )
        return {
            "shards": per_shard,
            "tenants": tenants,
            "restarts": self.restarts,
            "resizes": self.resizes,
            "n_shards": self.n_shards,
            "ring": self.ring.describe(),
            "uptime_seconds": round(time.time() - self._started_at, 3),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Fleet-wide registry snapshot: supervisor + every live shard.

        Best-effort per shard — a dead or slow worker contributes
        nothing rather than failing the scrape.
        """
        snapshots = [OBS.registry.snapshot()]
        for shard in list(self._shards):
            with shard.lock:
                if shard.closing and not shard.alive:
                    continue  # retired by a ring shrink
            try:
                snapshot = self._call_shard(
                    shard, "metrics", {}, Deadline.from_budget(1.0)
                )
            except Exception:  # noqa: BLE001 - scrape best-effort
                continue
            if isinstance(snapshot, dict):
                snapshots.append(snapshot)
        return merge_snapshots(snapshots)

    def metrics_text(self) -> str:
        """Prometheus text of the merged cross-worker snapshot."""
        return render_prom_snapshot(self.metrics_snapshot())

    # ------------------------------------------------------------------
    def shutdown(self) -> Dict[str, Any]:
        """Drain every worker (they spill their sessions), then reap."""
        already = self._shutting_down.is_set()
        self._shutting_down.set()
        if already:
            return {"shards": 0, "repeat": True}
        drained = 0
        for shard in list(self._shards):
            with shard.lock:
                shard.closing = True
                alive = shard.alive
                conn = shard.conn
            if alive and conn is not None:
                try:
                    conn.send(
                        {"id": self._next_id(), "op": "__shutdown__"}
                    )
                    drained += 1
                except (OSError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + 10.0
        for shard in list(self._shards):
            process = shard.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                _LOG.warning(
                    "shard %d: worker did not drain in time; killing",
                    shard.index,
                )
                process.kill()
                process.join(timeout=2.0)
            with shard.lock:
                shard.alive = False
                if shard.conn is not None:
                    try:
                        shard.conn.close()
                    except OSError:
                        pass
        summary = {
            "shards": self.n_shards,
            "drained": drained,
            "restarts": self.restarts,
        }
        _LOG.info(
            "shard supervisor shut down: %d/%d worker(s) drained",
            drained, self.n_shards,
        )
        if OBS.enabled:
            OBS.emit("supervisor_shutdown", **summary)
            OBS.flush()
        if self._owns_tracer:
            TRACER.disable()
        return summary


def make_service(bundle, config: Optional[ServiceConfig] = None):
    """Build the serving core the config asks for.

    ``executor="process"`` or ``shards > 0`` selects the supervised
    shard runtime (:class:`ShardSupervisor`); anything else builds a
    plain in-process :class:`ForecastService`. Both expose the same
    operations and error taxonomy, so the HTTP frontend and the
    benchmarks accept either.
    """
    config = config if config is not None else ServiceConfig()
    config.validate()
    if config.agent is not None and config.agent != bundle.agent_name:
        # Reject the mismatch here — before any shard worker forks or
        # a session observes — so a bad deployment fails at startup.
        raise ConfigurationError(
            f"service configured for agent {config.agent!r} but the "
            f"bundle serves a {bundle.agent_name!r} policy"
        )
    if config.wants_shards():
        return ShardSupervisor(bundle, config)
    return ForecastService(bundle, config)
