"""Supervised shard workers with crash failover and consistent hashing.

:class:`ShardSupervisor` is the process-isolated sibling of
:class:`~repro.serving.service.ForecastService` — same five operations,
same error taxonomy, same HTTP frontend — but sessions live in N shard
*worker processes* (:mod:`repro.serving.shard`), partitioned by
consistent hashing on the session id:

- **placement** — a :class:`HashRing` (CRC32, virtual nodes) maps every
  session id to one shard; a session's spill directory lives under that
  shard's subtree, so the mapping survives restarts of both sides;
- **liveness** — each worker heartbeats into shared memory; a monitor
  thread detects *dead* workers (``is_alive()`` false / pipe EOF)
  and *hung* ones (stale heartbeat → ``SIGKILL``), then fails over;
- **failover** — all requests pending on a dead worker fail fast with
  :class:`~repro.exceptions.WorkerCrashedError`; a replacement worker is
  spawned on the same shard + spill directory and re-adopts the spilled
  sessions lazily. Workers run *durable* services (observe is
  acknowledged only after the checkpoint hits disk), so an acknowledged
  observation is never lost to a crash and a failed-over session is
  bit-identical to one that never crashed;
- **retries** — idempotent operations (sequence-numbered ``observe``,
  ``predict``, ``info``, ``close``) are retried against the replacement
  worker under a jittered-backoff :class:`~repro.runtime.RetryPolicy`
  clamped to the request's remaining :class:`~repro.runtime.Deadline`;
  a non-idempotent ``observe`` (no ``seq``) is attempted exactly once;
- **crash-loop protection** — a per-shard
  :class:`~repro.runtime.CircuitBreaker` counts crashes; a shard that
  keeps dying is left down for a cooldown (its requests fail fast with
  :class:`~repro.exceptions.ServiceUnavailableError`) instead of
  fork-bombing the host.

Construct through :func:`make_service`, which picks this runtime when
``ServiceConfig.executor == "process"`` or ``shards > 0``.
"""

from __future__ import annotations

import bisect
import multiprocessing
import os
import tempfile
import threading
import time
import zlib
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from typing import Any, Dict, List, Optional

import numpy as np

from repro.exceptions import (
    ServiceUnavailableError,
    SessionExistsError,
    SessionNotFoundError,
    WorkerCrashedError,
)
from repro.obs import (
    OBS,
    TRACER,
    get_logger,
    merge_snapshots,
    render_prom_snapshot,
)
from repro.runtime import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    coerce_deadline,
)
from repro.serving.service import ForecastService, ServiceConfig
from repro.serving.shard import decode_error, worker_main
from repro.serving.store import validate_session_id
from repro.serving.tenantstats import TenantAccountant

_LOG = get_logger("serving.supervisor")

#: Virtual nodes per shard on the hash ring (smooths the partition).
VNODES = 64

#: Monitor cadence and heartbeat staleness bound (seconds).
MONITOR_INTERVAL = 0.25
HEARTBEAT_TIMEOUT = 5.0

#: A worker alive this long after (re)spawn counts as stable again.
STABILITY_WINDOW = 5.0

#: Crashes tripping a shard's restart breaker, and monitor ticks
#: absorbed while OPEN before a restart probe.
CRASH_THRESHOLD = 5
CRASH_COOLDOWN_TICKS = 40


def _mp_context():
    """Fork when available (shares the fitted bundle copy-on-write;
    POSIX-only), else the platform default."""
    method = os.environ.get("REPRO_SHARD_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


class HashRing:
    """Consistent CRC32 hash ring with virtual nodes.

    ``shard_for`` is stable under the key set: session placement depends
    only on (id, shard count), so a restarted supervisor with the same
    shard count routes every session back to the shard whose spill
    directory holds its checkpoints.
    """

    def __init__(self, n_shards: int, vnodes: int = VNODES):
        points: List[int] = []
        owners: List[int] = []
        pairs = sorted(
            (
                zlib.crc32(f"shard-{shard}-vn-{v}".encode()) & 0xFFFFFFFF,
                shard,
            )
            for shard in range(n_shards)
            for v in range(vnodes)
        )
        for point, owner in pairs:
            points.append(point)
            owners.append(owner)
        self._points = points
        self._owners = owners
        self.n_shards = n_shards

    def shard_for(self, key: str) -> int:
        h = zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF
        index = bisect.bisect_right(self._points, h)
        if index == len(self._points):
            index = 0
        return self._owners[index]


class _Shard:
    """Supervisor-side handle of one worker incarnation chain."""

    def __init__(self, index: int, spill_dir: str):
        self.index = index
        self.spill_dir = spill_dir
        self.lock = threading.Lock()
        self.process = None
        self.conn = None
        self.heartbeat = None
        self.reader: Optional[threading.Thread] = None
        self.pending: Dict[int, Future] = {}
        self.generation = 0
        self.spawned_at = 0.0
        self.stable = False
        self.alive = False
        self.closing = False
        self.breaker = CircuitBreaker(
            failure_threshold=CRASH_THRESHOLD,
            cooldown_steps=CRASH_COOLDOWN_TICKS,
        )


class ShardSupervisor:
    """Process-isolated, crash-tolerant drop-in for ForecastService."""

    def __init__(
        self,
        bundle,
        config: Optional[ServiceConfig] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
    ):
        self.config = config if config is not None else ServiceConfig(
            executor="process"
        )
        self.config.validate()
        self.bundle = bundle
        self.n_shards = self.config.shards or max(
            2, min(4, os.cpu_count() or 2)
        )
        spill_root = self.config.spill_dir
        if spill_root is None:
            spill_root = tempfile.mkdtemp(prefix="repro-shards-")
            _LOG.info("no spill_dir configured; using %s", spill_root)
        self.spill_root = spill_root
        self.ring = HashRing(self.n_shards)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.retry_policy.validate()
        self.heartbeat_timeout = float(heartbeat_timeout)
        self._owns_tracer = False
        if self.config.trace_dir and not TRACER.enabled:
            # The supervisor process is the request frontend; workers
            # enable their own tracers (role ``shard-<i>``) on spawn.
            TRACER.enable(self.config.trace_dir, "frontend")
            self._owns_tracer = True
        self._ctx = _mp_context()
        self._rng = np.random.default_rng(0xC0FFEE)
        self._request_ids = iter(range(1, 1 << 62)).__next__
        self._id_lock = threading.Lock()
        self._shutting_down = threading.Event()
        self._started_at = time.time()
        self.restarts = 0
        self._shards = [
            _Shard(i, os.path.join(spill_root, f"shard-{i:02d}"))
            for i in range(self.n_shards)
        ]
        for shard in self._shards:
            self._spawn_locked(shard)
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name="repro-shard-monitor",
            daemon=True,
        )
        self._monitor.start()
        _LOG.info(
            "shard supervisor up: %d worker(s), spill root %s",
            self.n_shards, spill_root,
        )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _worker_config(self, shard: _Shard) -> ServiceConfig:
        # Workers always run durable thread-executor services: the
        # ack-after-checkpoint write-through is what makes failover
        # lossless for acknowledged observations. ``trace_dir`` rides
        # along via ``replace``; workers get a registry-only telemetry
        # session whenever the supervisor's is live (or tracing is on)
        # so ``/metrics`` can merge every shard's snapshot.
        return replace(
            self.config,
            executor="thread",
            shards=0,
            durable=True,
            spill_dir=shard.spill_dir,
            worker_telemetry=(
                self.config.worker_telemetry
                or OBS.enabled
                or bool(self.config.trace_dir)
            ),
        )

    def _spawn_locked(self, shard: _Shard) -> None:
        """Start a fresh worker incarnation (caller serialises)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._ctx.Value("d", time.monotonic(), lock=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                shard.index,
                child_conn,
                heartbeat,
                self.bundle,
                self._worker_config(shard),
            ),
            name=f"repro-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # child's end lives in the child only
        shard.process = process
        shard.conn = parent_conn
        shard.heartbeat = heartbeat
        shard.generation += 1
        shard.spawned_at = time.monotonic()
        shard.stable = False
        shard.alive = True
        generation = shard.generation
        shard.reader = threading.Thread(
            target=self._reader_loop,
            args=(shard, parent_conn, generation),
            name=f"repro-shard-{shard.index}-reader",
            daemon=True,
        )
        shard.reader.start()
        _LOG.info(
            "shard %d: worker generation %d started (pid %s)",
            shard.index, generation, process.pid,
        )

    def _reader_loop(self, shard: _Shard, conn, generation: int) -> None:
        """Resolve pending futures from one incarnation's pipe."""
        while True:
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                # SIGKILL mid-send, worker exit, or our own close().
                break
            if not isinstance(payload, dict):
                continue
            with shard.lock:
                future = shard.pending.pop(payload.get("id"), None)
            if future is not None and not future.done():
                future.set_result(payload)
        if not shard.closing:
            self._on_worker_death(shard, generation, "pipe closed")

    def _on_worker_death(
        self, shard: _Shard, generation: int, why: str
    ) -> None:
        """Fail over one incarnation: fail its pending, maybe respawn."""
        with shard.lock:
            if shard.generation != generation or not shard.alive:
                return  # stale notification from a replaced incarnation
            shard.alive = False
            pending = list(shard.pending.values())
            shard.pending.clear()
            shard.breaker.record_failure()
            try:
                shard.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        _LOG.error(
            "shard %d: worker generation %d died (%s); failing %d "
            "in-flight request(s)",
            shard.index, generation, why, len(pending),
        )
        for future in pending:
            if not future.done():
                # Futures carry raw payload dicts; a None payload is
                # translated to WorkerCrashedError at the call site.
                future.set_result(None)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_serving_worker_crashes_total",
                {"shard": str(shard.index)},
            ).inc()
        if self._shutting_down.is_set():
            return
        with shard.lock:
            if shard.breaker.allow():
                self.restarts += 1
                self._spawn_locked(shard)

    def _monitor_loop(self) -> None:
        """Detect dead and hung workers; restart when the breaker lets us."""
        while not self._shutting_down.wait(MONITOR_INTERVAL):
            now = time.monotonic()
            for shard in self._shards:
                with shard.lock:
                    alive = shard.alive
                    process = shard.process
                    generation = shard.generation
                    heartbeat = (
                        shard.heartbeat.value
                        if shard.heartbeat is not None else now
                    )
                    spawned_at = shard.spawned_at
                if not alive:
                    # Down shard: probe the restart breaker each tick so
                    # OPEN cools down and HALF_OPEN eventually retries.
                    with shard.lock:
                        if not shard.alive and shard.breaker.allow():
                            self.restarts += 1
                            self._spawn_locked(shard)
                    continue
                if process is not None and not process.is_alive():
                    self._on_worker_death(
                        shard, generation, "process exited"
                    )
                    continue
                if now - heartbeat > self.heartbeat_timeout:
                    _LOG.error(
                        "shard %d: heartbeat stale for %.1fs; killing "
                        "hung worker",
                        shard.index, now - heartbeat,
                    )
                    try:
                        process.kill()
                    except (OSError, AttributeError):
                        pass
                    # The reader's EOF triggers the actual failover.
                    continue
                if (
                    not shard.stable
                    and now - spawned_at > STABILITY_WINDOW
                ):
                    with shard.lock:
                        shard.stable = True
                        shard.breaker.record_success()

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._id_lock:
            return self._request_ids()

    def _call_shard(
        self, shard: _Shard, op: str, args: Dict[str, Any], dl: Deadline
    ) -> Any:
        """One attempt against one shard; raises typed errors."""
        span = TRACER.child_span("rpc.shard", shard=shard.index, op=op)
        with span:
            request_id = self._next_id()
            future: Future = Future()
            envelope = {
                "id": request_id,
                "op": op,
                "args": args,
                "expires_at": None if dl.unbounded else dl.expires_at,
            }
            if span.ctx is not None:
                # The worker parents its ``worker.handle`` span here, so
                # the assembled trace crosses the process boundary.
                envelope["trace"] = span.ctx.to_wire()
            with shard.lock:
                if not shard.alive:
                    if shard.breaker.state is BreakerState.OPEN:
                        raise ServiceUnavailableError(
                            f"shard {shard.index} is crash-looping; its "
                            "restart breaker is open — retry later"
                        )
                    raise WorkerCrashedError(
                        shard.index, "worker is down (restarting)"
                    )
                shard.pending[request_id] = future
                try:
                    shard.conn.send(envelope)
                except (OSError, BrokenPipeError) as err:
                    shard.pending.pop(request_id, None)
                    raise WorkerCrashedError(
                        shard.index, f"send failed: {err}"
                    ) from None
            timeout = (
                self.config.deadline * 4
                if dl.unbounded
                else max(0.0, dl.remaining()) + self.config.deadline
            )
            try:
                payload = future.result(timeout=timeout)
            except FutureTimeoutError:
                with shard.lock:
                    shard.pending.pop(request_id, None)
                raise ServiceUnavailableError(
                    f"shard {shard.index} did not answer within the "
                    "deadline grace period"
                ) from None
            if payload is None:
                raise WorkerCrashedError(
                    shard.index, "worker died with this request in flight"
                )
            if payload.get("ok"):
                return payload["result"]
            raise decode_error(payload)

    def _request(
        self,
        session_id: str,
        op: str,
        args: Dict[str, Any],
        *,
        deadline=None,
        idempotent: bool = True,
    ) -> Any:
        if self._shutting_down.is_set():
            raise ServiceUnavailableError(
                "shard supervisor is shutting down; refusing new requests"
            )
        validate_session_id(session_id)
        dl = coerce_deadline(deadline, self.config.deadline)
        shard = self._shards[self.ring.shard_for(session_id)]

        def attempt():
            return self._call_shard(shard, op, args, dl)

        def run():
            if not idempotent:
                return attempt()
            return self.retry_policy.call(
                attempt,
                retry_on=(WorkerCrashedError,),
                deadline=dl,
                rng=self._rng,
                on_retry=lambda n, err: _LOG.warning(
                    "retrying %s on shard %d (attempt %d): %s",
                    op, shard.index, n + 1, err,
                ),
            )

        # ``child_span`` keeps direct (non-HTTP) calls traceless rather
        # than minting orphan single-request traces.
        with TRACER.child_span(f"service.{op}", session=session_id):
            return run()

    # ------------------------------------------------------------------
    # ForecastService-parity operations
    # ------------------------------------------------------------------
    def create_session(
        self, session_id: str, history, **session_kwargs
    ) -> Dict[str, Any]:
        """Admit a new tenant series on its hash-ring shard.

        Retried on worker crash; if the retry then reports the session
        as already existing, the first attempt's create committed before
        the crash and the session's description is returned instead of a
        conflict (create is made idempotent for the retry path only).
        """
        attempts = {"n": 0}
        history_arr = np.asarray(history, dtype=np.float64)

        def run():
            attempts["n"] += 1
            return self._request(
                session_id,
                "create",
                {
                    "session_id": session_id,
                    "history": history_arr,
                    "session_kwargs": session_kwargs,
                },
                idempotent=False,  # retried here, with conflict handling
            )

        try:
            return self.retry_policy.call(
                run,
                retry_on=(WorkerCrashedError,),
                deadline=coerce_deadline(None, self.config.deadline),
                rng=self._rng,
            )
        except SessionExistsError:
            if attempts["n"] > 1:
                return self.session_info(session_id)
            raise

    def observe(
        self,
        session_id: str,
        value: float,
        *,
        seq: Optional[int] = None,
        deadline=None,
    ) -> Dict[str, Any]:
        """Feed one realised value; crash-retried only when ``seq`` makes
        it idempotent (a retried duplicate returns the cached ack)."""
        return self._request(
            session_id,
            "observe",
            {"session_id": session_id, "value": float(value), "seq": seq},
            deadline=deadline,
            idempotent=seq is not None,
        )

    def predict(
        self, session_id: str, *, deadline=None
    ) -> Dict[str, Any]:
        return self._request(
            session_id,
            "predict",
            {"session_id": session_id},
            deadline=deadline,
        )

    def session_info(self, session_id: str) -> Dict[str, Any]:
        return self._request(
            session_id, "info", {"session_id": session_id}
        )

    def close_session(self, session_id: str) -> None:
        attempts = {"n": 0}

        def run():
            attempts["n"] += 1
            return self._request(
                session_id,
                "close",
                {"session_id": session_id},
                idempotent=False,
            )

        try:
            self.retry_policy.call(
                run, retry_on=(WorkerCrashedError,), rng=self._rng
            )
        except SessionNotFoundError:
            if attempts["n"] > 1:
                return  # first attempt deleted it before the crash
            raise

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        shards = []
        up = 0
        now = time.monotonic()
        for shard in self._shards:
            with shard.lock:
                alive = shard.alive
                breaker_state = shard.breaker.state
                generation = shard.generation
                stable = shard.stable
                heartbeat = (
                    shard.heartbeat.value
                    if shard.heartbeat is not None else None
                )
            if alive:
                up += 1
                state = "alive"
            elif breaker_state is BreakerState.OPEN:
                state = "breaker_open"
            else:
                state = "restarting"
            shards.append(
                {
                    "shard": shard.index,
                    "alive": alive,
                    "state": state,
                    "stable": stable,
                    "generation": generation,
                    "breaker": breaker_state.value,
                    "heartbeat_age_seconds": (
                        round(max(0.0, now - heartbeat), 3)
                        if alive and heartbeat is not None
                        else None
                    ),
                }
            )
        if self._shutting_down.is_set():
            status = "unavailable"
        elif up == self.n_shards:
            status = "ok"
        elif up > 0:
            status = "degraded"
        else:
            status = "unavailable"
        return {
            "status": status,
            "shards": shards,
            "shards_up": up,
            "shards_total": self.n_shards,
            "restarts": self.restarts,
            "shutting_down": self._shutting_down.is_set(),
            "uptime_seconds": round(time.time() - self._started_at, 3),
        }

    def stats(self) -> Dict[str, Any]:
        per_shard = {}
        for shard in self._shards:
            try:
                per_shard[str(shard.index)] = self._call_shard(
                    shard, "stats", {}, Deadline.from_budget(1.0)
                )
            except Exception as err:  # noqa: BLE001 - stats best-effort
                per_shard[str(shard.index)] = {"error": str(err)}
        # Shards partition tenants by the hash ring, so the fleet-wide
        # per-tenant view is a bounded merge of per-shard snapshots.
        tenants = TenantAccountant.merge(
            [
                shard_stats.get("tenants", {})
                for shard_stats in per_shard.values()
                if isinstance(shard_stats, dict)
            ]
        )
        return {
            "shards": per_shard,
            "tenants": tenants,
            "restarts": self.restarts,
            "n_shards": self.n_shards,
            "uptime_seconds": round(time.time() - self._started_at, 3),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Fleet-wide registry snapshot: supervisor + every live shard.

        Best-effort per shard — a dead or slow worker contributes
        nothing rather than failing the scrape.
        """
        snapshots = [OBS.registry.snapshot()]
        for shard in self._shards:
            try:
                snapshot = self._call_shard(
                    shard, "metrics", {}, Deadline.from_budget(1.0)
                )
            except Exception:  # noqa: BLE001 - scrape best-effort
                continue
            if isinstance(snapshot, dict):
                snapshots.append(snapshot)
        return merge_snapshots(snapshots)

    def metrics_text(self) -> str:
        """Prometheus text of the merged cross-worker snapshot."""
        return render_prom_snapshot(self.metrics_snapshot())

    # ------------------------------------------------------------------
    def shutdown(self) -> Dict[str, Any]:
        """Drain every worker (they spill their sessions), then reap."""
        already = self._shutting_down.is_set()
        self._shutting_down.set()
        if already:
            return {"shards": 0, "repeat": True}
        drained = 0
        for shard in self._shards:
            with shard.lock:
                shard.closing = True
                alive = shard.alive
                conn = shard.conn
            if alive and conn is not None:
                try:
                    conn.send(
                        {"id": self._next_id(), "op": "__shutdown__"}
                    )
                    drained += 1
                except (OSError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + 10.0
        for shard in self._shards:
            process = shard.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                _LOG.warning(
                    "shard %d: worker did not drain in time; killing",
                    shard.index,
                )
                process.kill()
                process.join(timeout=2.0)
            with shard.lock:
                shard.alive = False
                if shard.conn is not None:
                    try:
                        shard.conn.close()
                    except OSError:
                        pass
        summary = {
            "shards": self.n_shards,
            "drained": drained,
            "restarts": self.restarts,
        }
        _LOG.info(
            "shard supervisor shut down: %d/%d worker(s) drained",
            drained, self.n_shards,
        )
        if OBS.enabled:
            OBS.emit("supervisor_shutdown", **summary)
            OBS.flush()
        if self._owns_tracer:
            TRACER.disable()
        return summary


def make_service(bundle, config: Optional[ServiceConfig] = None):
    """Build the serving core the config asks for.

    ``executor="process"`` or ``shards > 0`` selects the supervised
    shard runtime (:class:`ShardSupervisor`); anything else builds a
    plain in-process :class:`ForecastService`. Both expose the same
    operations and error taxonomy, so the HTTP frontend and the
    benchmarks accept either.
    """
    config = config if config is not None else ServiceConfig()
    config.validate()
    if config.wants_shards():
        return ShardSupervisor(bundle, config)
    return ForecastService(bundle, config)
