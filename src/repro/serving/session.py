"""Per-series resumable online forecasting state (paper Alg. 1 as a step API).

:class:`SeriesSession` is the online loop of
:meth:`repro.core.EADRL.rolling_forecast_online` factored into a
reusable ``observe(y_t) -> forecast`` step object: the ω-window of the
policy's own recent outputs, the replay feedback, the Page-Hinkley drift
detector, and the policy-update triggers all live here. The batch loop
*drives* a session (one shared code path), so batch-online and step-API
outputs are bit-identical — enforced by
``tests/serving/test_step_determinism.py``.

Two feeding modes exist:

- **matrix mode** — the caller supplies each step's base-model
  prediction row (what the batch loop and the evaluation harness do);
- **pool mode** — the session holds a fitted
  :class:`~repro.models.pool.ForecasterPool` plus the true history and
  computes the row itself, which is what the multi-tenant serving layer
  (:mod:`repro.serving.service`) uses.

Sessions checkpoint their complete state (policy networks, optimizer
moments, replay ring, RNG/noise, window, rings, detector) through
:meth:`checkpoint_state` / :meth:`restore_checkpoint_state`, so a
session spilled to disk by the :class:`~repro.serving.store.SessionStore`
and later restored forecasts bit-identically to one that never left
memory.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.baselines.drift import PageHinkley
from repro.exceptions import ConfigurationError, DataValidationError
from repro.obs import OBS, get_logger
from repro.obs.registry import FAST_BUCKETS
from repro.obs.trace import TRACER
from repro.rl.mdp import Transition
from repro.rl.rewards import RankReward, RewardFunction
from repro.runtime import combine_masked

_LOG = get_logger("serving.session")

#: Online-update trigger modes (mirrors ``EADRL.rolling_forecast_online``).
MODES = ("periodic", "drift", "none")


def _prefixed(prefix: str, arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {f"{prefix}.{name}": value for name, value in arrays.items()}


def _strip_prefix(prefix: str, arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    head = prefix + "."
    return {
        name[len(head):]: value
        for name, value in arrays.items()
        if name.startswith(head)
    }


class SeriesSession:
    """One live online-forecasting stream for a single series.

    Parameters
    ----------
    agent:
        The :class:`~repro.rl.ddpg.DDPGAgent` whose policy combines the
        pool's predictions. The batch loop passes the estimator's own
        agent (shared, keeps learning in place); the serving layer gives
        every session its own clone so tenants learn independently.
    scaler:
        The fitted :class:`~repro.preprocessing.scaling.StandardScaler`
        of the offline phase (read-only here; safe to share).
    window:
        ω — the MDP state window.
    n_members:
        Number of pool members (the weight-vector dimension).
    reward_fn:
        Reward used to score realised transitions (paper Eq. 3).
    bootstrap_matrix:
        ``>= ω`` rows of base-model predictions preceding the stream:
        the initial state window is the uniform combination of its last
        ω (standardised) rows, exactly as in the batch loop.
    mode, interval, updates_per_trigger:
        Policy-update trigger configuration (see
        :meth:`EADRL.rolling_forecast_online`).
    detector:
        Drift detector; defaults to the batch loop's
        ``PageHinkley(delta=0.05, threshold=3.0)``.
    pool, history:
        Enable pool mode: ``history`` must hold enough true values for
        every member's ``min_context``. ``observe(y)`` then appends each
        realised value and computes the next prediction row itself.
    session_id:
        Optional name used in logs and checkpoint context.
    """

    def __init__(
        self,
        agent,
        scaler,
        *,
        window: int,
        n_members: int,
        reward_fn: RewardFunction,
        bootstrap_matrix: np.ndarray,
        mode: str = "periodic",
        interval: int = 25,
        updates_per_trigger: int = 10,
        detector: Optional[PageHinkley] = None,
        pool=None,
        history: Optional[np.ndarray] = None,
        session_id: Optional[str] = None,
    ):
        if mode not in MODES:
            raise ConfigurationError(
                f"mode must be 'periodic', 'drift' or 'none', got {mode!r}"
            )
        if interval < 1 or updates_per_trigger < 1:
            raise ConfigurationError(
                "interval and updates_per_trigger must be >= 1"
            )
        if window < 2 or n_members < 1:
            raise ConfigurationError(
                "window must be >= 2 and n_members >= 1"
            )
        boot = np.asarray(bootstrap_matrix, dtype=np.float64)
        if boot.ndim != 2 or boot.shape[1] != n_members:
            raise DataValidationError(
                f"bootstrap matrix must be 2-D with {n_members} columns, "
                f"got shape {boot.shape}"
            )
        if boot.shape[0] < window:
            raise DataValidationError(
                f"bootstrap matrix needs >= ω={window} rows"
            )
        if pool is not None and history is None:
            raise ConfigurationError(
                "pool mode requires an initial history"
            )
        self.agent = agent
        self.scaler = scaler
        self.window = int(window)
        self.n_members = int(n_members)
        self.reward_fn = reward_fn
        self.mode = mode
        self.interval = int(interval)
        self.updates_per_trigger = int(updates_per_trigger)
        self.detector = (
            detector if detector is not None
            else PageHinkley(delta=0.05, threshold=3.0)
        )
        self.pool = pool
        self.session_id = session_id
        self.lock = threading.RLock()

        # Initial state: uniform combination of the last ω standardised
        # bootstrap rows — bit-identical to the batch loop's
        # ``scaled_boot @ uniform``.
        uniform = np.full(self.n_members, 1.0 / self.n_members)
        self._state = self.scaler.transform(boot[-self.window:]) @ uniform
        self._history = (
            np.asarray(history, dtype=np.float64).copy()
            if history is not None else None
        )

        # Ring of the last ω realised (scaled row, scaled truth, mask)
        # triples, oldest first; only consulted once ``_realised >= ω``,
        # at which point it is fully populated.
        self._recent_rows = np.zeros((self.window, self.n_members))
        self._recent_truths = np.zeros(self.window)
        self._recent_masks = np.ones((self.window, self.n_members), dtype=bool)
        self._realised = 0

        self._pending = False
        self._last_row_scaled = np.zeros(self.n_members)
        self._last_mask = np.ones(self.n_members, dtype=bool)

        self.step = 0
        self.steps_since_update = 0
        # Idempotency ledger for the serving layer: the last acknowledged
        # client sequence number and the exact response it was sent.
        # Checkpointed with the session, so a retry after a crash
        # replays the cached answer instead of double-advancing the loop.
        self.ack_seq: Optional[int] = None
        self.ack_response: Optional[Dict[str, Any]] = None
        self.last_forecast: Optional[float] = None
        self.last_weights: Optional[np.ndarray] = None
        self.last_reward: Optional[float] = None
        self.last_rank: Optional[int] = None
        self.last_drifted = False
        self.last_update_trigger: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> np.ndarray:
        """The current ω-window of (scaled) ensemble outputs."""
        return self._state

    @property
    def history(self) -> Optional[np.ndarray]:
        """The true-value history (pool mode only)."""
        return self._history

    @property
    def pending(self) -> bool:
        """Whether a forecast is outstanding, awaiting its realisation."""
        return self._pending

    # ------------------------------------------------------------------
    # Step primitives (the batch loop drives these directly)
    # ------------------------------------------------------------------
    def forecast_step(
        self, prediction_row: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> float:
        """Combine one base-model prediction row into a forecast.

        Mirrors one iteration head of the batch online loop: query the
        policy for weights, degrade over unhealthy members, store a
        replay transition once ω fully-healthy realised pairs exist, and
        advance the state window with the (scaled) ensemble output.
        ``mask`` defaults to ``isfinite(prediction_row)``; pool mode
        additionally intersects the pool's health mask.

        Internally split into a pure assembly phase
        (:meth:`prepare_forecast`), the policy query, and a mutation
        tail (:meth:`apply_forecast`) so the batched serving path can
        run one stacked actor forward for many sessions and still be
        bit-identical to this method.
        """
        scaled_row, healthy = self.prepare_forecast(prediction_row, mask)
        if OBS.enabled or TRACER.enabled:
            weights = self._timed_forward()
        else:
            weights = self.agent.policy_weights(self._state)
        return self.apply_forecast(scaled_row, healthy, weights)

    def _timed_forward(self) -> np.ndarray:
        """Policy forward with trace span + sub-ms histogram (slow path).

        Split out of :meth:`forecast_step` so the telemetry-off hot
        path stays a single attribute check per step.
        """
        t0 = time.perf_counter()
        with TRACER.child_span("actor.forward"):
            weights = self.agent.policy_weights(self._state)
        if OBS.enabled:
            OBS.registry.histogram(
                "repro_actor_forward_seconds", {"path": "serial"},
                buckets=FAST_BUCKETS,
            ).observe(time.perf_counter() - t0)
        return weights

    def prepare_forecast(
        self, prediction_row: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pure phase of :meth:`forecast_step`: validate and scale.

        Returns ``(scaled_row, healthy)`` and mutates nothing; the
        session state is untouched until :meth:`apply_forecast`.
        """
        row = np.asarray(prediction_row, dtype=np.float64)
        if row.shape != (self.n_members,):
            raise DataValidationError(
                f"prediction row must have shape ({self.n_members},), "
                f"got {row.shape}"
            )
        healthy = np.isfinite(row)
        if mask is not None:
            healthy = healthy & np.asarray(mask, dtype=bool)
        return self.scaler.transform(row), healthy

    def apply_forecast(
        self,
        scaled_row: np.ndarray,
        healthy: np.ndarray,
        weights: np.ndarray,
    ) -> float:
        """Mutation tail of :meth:`forecast_step`.

        ``weights`` must be ``agent.policy_weights(self.state)`` — the
        caller either computed it per session or took its row of a
        stacked batched forward (bit-identical by construction).
        """
        scaled_out, weights = combine_masked(
            scaled_row, weights, healthy, self.step
        )
        output = float(self.scaler.inverse_transform(scaled_out))

        self.last_reward = None
        self.last_rank = None
        # Once ω true values have been observed, score the action the
        # same way the offline MDP does and store the transition.
        # Degraded windows (any unhealthy member) are skipped — fallback
        # rows would poison the replay buffer.
        if self._realised >= self.window and self._recent_masks.all():
            reward = self.reward_fn(
                self._recent_rows, self._recent_truths, weights
            )
            next_state = np.append(self._state[1:], scaled_out)
            self.agent.buffer.push(
                Transition(self._state, weights, reward, next_state, False)
            )
            self.last_reward = float(reward)
            if isinstance(self.reward_fn, RankReward):
                # Invert Eq. 3: r = m + 1 − ρ(f̄).
                self.last_rank = int(round(self.n_members + 1 - reward))

        self._state = np.append(self._state[1:], scaled_out)
        self._last_row_scaled = scaled_row
        self._last_mask = healthy
        self.last_weights = weights
        self.last_forecast = output
        self._pending = True
        self.step += 1
        return output

    def feedback(self, y: float) -> None:
        """Close the pending forecast with its realised value.

        Mirrors the iteration tail of the batch online loop: push the
        (scaled) realised pair into the reward ring, feed the absolute
        forecast error to the drift detector, and run the configured
        policy updates when the periodic or drift trigger fires.
        """
        if not self._pending:
            raise ConfigurationError(
                "feedback() without an outstanding forecast; call "
                "forecast_step()/observe() first"
            )
        y = float(y)
        self._recent_rows[:-1] = self._recent_rows[1:]
        self._recent_rows[-1] = self._last_row_scaled
        self._recent_truths[:-1] = self._recent_truths[1:]
        self._recent_truths[-1] = self.scaler.transform(y)
        self._recent_masks[:-1] = self._recent_masks[1:]
        self._recent_masks[-1] = self._last_mask
        self._realised += 1
        self.steps_since_update += 1

        error = abs(float(self.last_forecast) - y)
        self.last_drifted = bool(self.detector.update(error))
        periodic_due = (
            self.mode == "periodic"
            and self.steps_since_update >= self.interval
        )
        drift_due = self.mode == "drift" and self.last_drifted
        self.last_update_trigger = None
        if periodic_due or drift_due:
            trigger = "drift" if drift_due else "periodic"
            _LOG.debug(
                "online policy update at step %d (%s trigger)",
                self.step - 1, trigger,
            )
            for _ in range(self.updates_per_trigger):
                self.agent.update()
            self.steps_since_update = 0
            self.last_update_trigger = trigger
        if self._history is not None:
            self._history = np.append(self._history, y)
        self._pending = False

    # ------------------------------------------------------------------
    # The serving step API
    # ------------------------------------------------------------------
    def observe(
        self, y: float, prediction_row: Optional[np.ndarray] = None
    ) -> float:
        """Feed one realised value, return the forecast for the next step.

        Closes the outstanding forecast with ``y`` (reward transition,
        drift detection, policy updates), then forecasts the next value
        — from ``prediction_row`` in matrix mode, or from the pool
        applied to the (extended) true history in pool mode. The first
        call on a fresh session has no outstanding forecast; ``y`` then
        only extends the history.
        """
        with self.lock:
            self.begin_observe(y)
            if prediction_row is not None:
                return self.forecast_step(prediction_row)
            if self.pool is None:
                raise ConfigurationError(
                    "matrix-mode session needs an explicit prediction_row"
                )
            with TRACER.child_span("pool.eval"):
                values, health = self.pool.predict_next_with_mask(
                    self._history
                )
            return self.forecast_step(values, mask=health)

    def begin_observe(self, y: float) -> None:
        """The head of :meth:`observe`: absorb the realised value.

        Closes the outstanding forecast (reward transition, drift
        detection, policy updates — everything that can change the
        policy parameters happens *here*, before any forward pass) or,
        on a fresh pool-mode session, just extends the history. Caller
        must hold :attr:`lock`.
        """
        if self._pending:
            self.feedback(y)
        elif self._history is not None:
            self._history = np.append(self._history, float(y))
        else:
            raise ConfigurationError(
                "observe() before any forecast on a matrix-mode "
                "session; call forecast_step() first"
            )

    def predict(self) -> float:
        """Forecast the next value *without* advancing the session.

        A pure read: queries the policy and the pool on the current
        state/history and combines, mutating nothing. Pool mode only.
        """
        with self.lock:
            if self.pool is None:
                raise ConfigurationError(
                    "predict() requires a pool-mode session"
                )
            values, health = self.pool.predict_next_with_mask(self._history)
            healthy = np.isfinite(values) & health
            weights = self.agent.policy_weights(self._state)
            scaled_out, _ = combine_masked(
                self.scaler.transform(values), weights, healthy, self.step
            )
            return float(self.scaler.inverse_transform(scaled_out))

    # ------------------------------------------------------------------
    # Resume seams
    # ------------------------------------------------------------------
    def restore_loop_state(
        self,
        *,
        state: np.ndarray,
        next_step: int,
        steps_since_update: int,
        detector_state: Dict[str, Any],
        recent_rows: Optional[np.ndarray] = None,
        recent_truths: Optional[np.ndarray] = None,
    ) -> None:
        """Seed the session mid-stream (the batch loop's resume path).

        ``recent_rows``/``recent_truths`` are the *raw* rows/values of
        the last ``min(ω, next_step)`` realised steps; the session
        re-derives the scaled reward ring and health masks from them,
        reproducing the uninterrupted run bit-exactly.
        """
        self._state = np.asarray(state, dtype=np.float64).copy()
        self.step = int(next_step)
        self._realised = int(next_step)
        self.steps_since_update = int(steps_since_update)
        self.detector.restore_checkpoint_state(detector_state)
        if recent_rows is not None:
            rows = np.asarray(recent_rows, dtype=np.float64)
            truths = np.asarray(recent_truths, dtype=np.float64)
            k = min(self.window, rows.shape[0])
            if k:
                self._recent_rows[self.window - k:] = (
                    self.scaler.transform(rows[-k:])
                )
                self._recent_truths[self.window - k:] = (
                    self.scaler.transform(truths[-k:])
                )
                self._recent_masks[self.window - k:] = np.isfinite(rows[-k:])
        self._pending = False

    # ------------------------------------------------------------------
    # Spill / restore (serving SessionStore)
    # ------------------------------------------------------------------
    def checkpoint_state(
        self, *, pristine_light: bool = False
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Capture every source of future behaviour, bit-exactly.

        Includes the session's own policy state (networks, optimizer
        moments, replay ring, RNG/noise) — serving sessions own their
        agent — plus the ω-window, the reward ring, the drift detector,
        the pending forecast, and (pool mode) the true history.

        ``pristine_light`` is forwarded to
        :meth:`DDPGAgent.checkpoint_state`: a never-updated agent then
        omits its network/optimizer arrays (the restorer re-copies them
        from the bundle template), shrinking spill payloads by an order
        of magnitude.
        """
        with self.lock:
            arrays: Dict[str, np.ndarray] = {
                "session.state": self._state.copy(),
                "session.recent_rows": self._recent_rows.copy(),
                "session.recent_truths": self._recent_truths.copy(),
                "session.recent_masks": self._recent_masks.copy(),
                "session.last_row": self._last_row_scaled.copy(),
                "session.last_mask": self._last_mask.copy(),
            }
            if self._history is not None:
                arrays["session.history"] = self._history.copy()
            agent_arrays, agent_meta = self.agent.checkpoint_state(
                pristine_light=pristine_light
            )
            arrays.update(_prefixed("agent", agent_arrays))
            meta: Dict[str, Any] = {
                "agent": agent_meta,
                "step": self.step,
                "realised": self._realised,
                "steps_since_update": self.steps_since_update,
                "detector": self.detector.checkpoint_state(),
                "pending": self._pending,
                "last_forecast": self.last_forecast,
                "ack_seq": self.ack_seq,
                "ack_response": self.ack_response,
                "mode": self.mode,
                "interval": self.interval,
                "updates_per_trigger": self.updates_per_trigger,
                "window": self.window,
                "n_members": self.n_members,
            }
            return arrays, meta

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        """Restore a snapshot from :meth:`checkpoint_state` in place."""
        if (
            int(meta["window"]) != self.window
            or int(meta["n_members"]) != self.n_members
        ):
            raise ConfigurationError(
                f"session snapshot is for (window={meta['window']}, "
                f"members={meta['n_members']}); this session has "
                f"(window={self.window}, members={self.n_members})"
            )
        with self.lock:
            self._state = arrays["session.state"].copy()
            self._recent_rows = arrays["session.recent_rows"].copy()
            self._recent_truths = arrays["session.recent_truths"].copy()
            self._recent_masks = (
                arrays["session.recent_masks"].astype(bool).copy()
            )
            self._last_row_scaled = arrays["session.last_row"].copy()
            self._last_mask = arrays["session.last_mask"].astype(bool).copy()
            if "session.history" in arrays:
                self._history = arrays["session.history"].copy()
            self.agent.restore_checkpoint_state(
                _strip_prefix("agent", arrays), meta["agent"]
            )
            self.step = int(meta["step"])
            self._realised = int(meta["realised"])
            self.steps_since_update = int(meta["steps_since_update"])
            self.detector.restore_checkpoint_state(meta["detector"])
            self._pending = bool(meta["pending"])
            self.last_forecast = (
                float(meta["last_forecast"])
                if meta["last_forecast"] is not None else None
            )
            # .get(): snapshots written before the idempotency ledger
            # existed restore with an empty ledger.
            ack_seq = meta.get("ack_seq")
            self.ack_seq = int(ack_seq) if ack_seq is not None else None
            ack_response = meta.get("ack_response")
            self.ack_response = (
                dict(ack_response) if ack_response is not None else None
            )

    def describe(self) -> Dict[str, Any]:
        """JSON-able session info for the service's status endpoints."""
        with self.lock:
            return {
                "session": self.session_id,
                "step": self.step,
                "realised": self._realised,
                "mode": self.mode,
                "pending": self._pending,
                "last_forecast": self.last_forecast,
                "history_length": (
                    int(self._history.size)
                    if self._history is not None else None
                ),
                "drift_observations": self.detector.observations,
            }
