"""Live ring resize: session migration protocol + load-adaptive scaling.

The elastic half of the shard runtime. :class:`Rebalancer` executes the
supervisor-driven migration protocol that moves sessions between shard
workers while they keep serving; :class:`ScalingController` decides
*when* to move them, from the per-shard load signals the monitor thread
already collects.

Migration protocol (per session, driven from the supervisor process)::

        ┌─────────┐  park   ┌──────────┐ release ┌──────────┐
        │ SERVING ├────────>│ DRAINING ├────────>│ RELEASED │
        └─────────┘         └──────────┘         └────┬─────┘
             ^    old owner serves; new                │ rename
             │    arrivals park on a                   v (atomic)
             │    per-session event              ┌──────────┐
        ┌────┴────┐  unpark + route   adopt      │  MOVED   │
        │ SERVING │<────────────────────────────┤└──────────┘
        └─────────┘  override → new owner


- **park** — the supervisor parks new requests for the migrating
  session against their :class:`~repro.runtime.Deadline` (they wait for
  the handoff, they are not dropped); requests already inside the old
  owner finish normally (the store waits out their pins);
- **release** — the old owner quiesces the session and writes one final
  durable checkpoint, idempotency ledger included
  (:meth:`SessionStore.release`); from here the session's entire state
  lives in its spill directory;
- **rename** — the supervisor atomically renames the session's spill
  directory from the old shard's subtree into the new shard's. This is
  the *commit point of ownership*: directory location decides which
  worker re-adopts the session after any crash, and ``os.rename`` on
  one filesystem cannot leave it in both;
- **adopt** — the new owner registers the directory
  (:meth:`SessionStore.adopt`); the session restores lazily through the
  exact spill/restore path that crash failover already proves
  bit-identical;
- **unpark** — a routing override points the session at its new owner
  until the new ring commits.

Crash safety: every step is idempotent or atomic. A worker SIGKILLed
mid-``release`` leaves the directory under the old owner (its
replacement re-adopts it; the retried release finds it already
durable); SIGKILLed around ``rename``/``adopt``, the directory is in
exactly one subtree and the retried adopt is a no-op. A migration whose
retries exhaust is *pinned*: the supervisor routes the session at
whichever shard's subtree holds its directory, and the session stays
serveable while the resize reports the failure.

:class:`ScalingController` turns per-shard load samples (queue depth,
session counts, heartbeat age — the signals ``/stats`` and ``/healthz``
already export) into grow / shrink / hot-shard-rebalance decisions with
hysteresis (consecutive agreeing evaluations) and a cooldown between
actions; the supervisor additionally gates every policy decision behind
a rebalance circuit breaker so a migration that keeps failing stops
being retried automatically.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ConfigurationError, ServingError
from repro.obs import OBS, get_logger
from repro.obs.trace import NEW_TRACE, TRACER
from repro.serving.ring import HashRing

_LOG = get_logger("serving.rebalance")

__all__ = [
    "Migration",
    "MigrationReport",
    "Rebalancer",
    "ScalingConfig",
    "ScalingController",
    "ShardLoad",
    "plan_migrations",
]


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Migration:
    """One session's ownership change between two ring versions."""

    session_id: str
    src: int
    dst: int


def plan_migrations(
    old: HashRing, new: HashRing, keys: Iterable[str]
) -> List[Migration]:
    """The ownership diff between two rings as an ordered work list.

    Deterministic (sorted by session id) so chaos runs and retries
    replay the same order.
    """
    moves = HashRing.ownership_diff(old, new, keys)
    return [
        Migration(sid, src, dst)
        for sid, (src, dst) in sorted(moves.items())
    ]


@dataclass
class MigrationReport:
    """Outcome of one resize/rebalance execution."""

    reason: str
    from_version: int
    to_version: int
    planned: int = 0
    moved: int = 0
    failed: int = 0
    skipped: int = 0
    duration_seconds: float = 0.0
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "planned": self.planned,
            "moved": self.moved,
            "failed": self.failed,
            "skipped": self.skipped,
            "duration_seconds": round(self.duration_seconds, 4),
            "failures": self.failures[:8],
            "ok": self.ok,
        }


# ----------------------------------------------------------------------
# Migration executor
# ----------------------------------------------------------------------
class Rebalancer:
    """Executes a migration plan against a :class:`ShardSupervisor`.

    The supervisor exposes the primitives (park/unpark routing, shard
    RPC, spill-subtree paths, transition begin/commit); the rebalancer
    owns ordering, retries, crash recovery, and accounting. One
    execution runs at a time (the supervisor serialises callers).

    ``step_hook`` is a test/chaos injection point: when set, it is
    called as ``step_hook(step, migration)`` at every protocol step
    (``"park"``, ``"release"``, ``"rename"``, ``"adopt"``,
    ``"unpark"``) *before* that step runs — the chaos harness uses it
    to SIGKILL workers at exact protocol positions.
    """

    def __init__(self, supervisor, *, drain_timeout: float = 5.0):
        self.supervisor = supervisor
        self.drain_timeout = float(drain_timeout)
        self.step_hook: Optional[Callable[[str, Migration], None]] = None

    # -- internals -----------------------------------------------------
    def _hook(self, step: str, migration: Migration) -> None:
        if self.step_hook is not None:
            self.step_hook(step, migration)

    def _count(self, outcome: str) -> None:
        if OBS.enabled:
            OBS.registry.counter(
                "repro_serving_migrations_total", {"outcome": outcome}
            ).inc()

    def _session_dir(self, shard: int, session_id: str) -> Path:
        return Path(self.supervisor.shard_spill_dir(shard)) / session_id

    def _locate(self, migration: Migration) -> Optional[int]:
        """Which side's subtree currently holds the session directory."""
        if self._session_dir(migration.dst, migration.session_id).is_dir():
            return migration.dst
        if self._session_dir(migration.src, migration.session_id).is_dir():
            return migration.src
        return None

    def _rename(self, migration: Migration) -> None:
        """Atomically move the spill directory src → dst subtree.

        Idempotent: already-moved directories (a retry after a crash
        between rename and adopt) are left alone.
        """
        src = self._session_dir(migration.src, migration.session_id)
        dst = self._session_dir(migration.dst, migration.session_id)
        if dst.is_dir():
            return
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.rename(src, dst)

    def _migrate_one(self, migration: Migration) -> str:
        """Run the full per-session protocol; returns the outcome."""
        sup = self.supervisor
        sid = migration.session_id
        self._hook("park", migration)
        sup.park_session(sid)
        owner: Optional[int] = migration.src
        try:
            self._hook("release", migration)
            released = sup.release_on_shard(
                migration.src, sid, timeout=self.drain_timeout
            )
            if not released.get("known") and self._locate(migration) is None:
                # Session vanished between planning and now (closed by
                # a client, or it never existed on disk): nothing to
                # do, and no override to keep (unpark clears it).
                owner = None
                return "skipped"
            self._hook("rename", migration)
            self._rename(migration)
            self._hook("adopt", migration)
            if not sup.adopt_on_shard(migration.dst, sid):
                raise ServingError(
                    f"shard {migration.dst} could not adopt session "
                    f"{sid!r}: no spill directory after rename"
                )
            owner = migration.dst
            return "moved"
        except BaseException as err:
            # Pin the session at whichever shard's subtree actually
            # holds its directory, and make sure that side knows about
            # it — the session stays serveable, the resize reports the
            # failure, and a later retry can finish the move.
            located = self._locate(migration)
            owner = located if located is not None else migration.src
            try:
                sup.adopt_on_shard(owner, sid)
            except Exception:  # noqa: BLE001 - owner may be crash-looping
                pass
            _LOG.error(
                "migration of %s (%d -> %d) failed, pinned to shard %d: %s",
                sid, migration.src, migration.dst, owner, err,
            )
            raise
        finally:
            self._hook("unpark", migration)
            sup.unpark_session(sid, owner)

    # -- entry point ---------------------------------------------------
    def execute(self, new_ring: HashRing, reason: str) -> MigrationReport:
        """Migrate every session the ring change moves, then commit.

        Returns a report; raises nothing for per-session failures (they
        are pinned and counted), only for protocol-level impossibility
        (e.g. no spill root).
        """
        sup = self.supervisor
        old_ring = sup.ring
        report = MigrationReport(
            reason=reason,
            from_version=old_ring.version,
            to_version=new_ring.version,
        )
        t0 = time.perf_counter()
        with TRACER.span(
            "rebalance.execute", parent=NEW_TRACE, reason=reason,
            from_version=old_ring.version, to_version=new_ring.version,
        ):
            keys = sup.known_session_ids()
            plan_map = {
                m.session_id: m
                for m in plan_migrations(old_ring, new_ring, keys)
            }
            # Sessions pinned off-ring by an earlier failed migration
            # move from where they *actually* are, not from where the
            # old ring thinks they are — this is how a pin heals.
            for sid, pin in sup.pinned_overrides().items():
                dst = new_ring.shard_for(sid)
                if pin == dst:
                    plan_map.pop(sid, None)
                else:
                    plan_map[sid] = Migration(sid, pin, dst)
            plan = [plan_map[sid] for sid in sorted(plan_map)]
            report.planned = len(plan)
            sup.begin_transition(new_ring)
            _LOG.info(
                "rebalance (%s): ring v%d -> v%d, %d of %d session(s) move",
                reason, old_ring.version, new_ring.version,
                len(plan), len(keys),
            )
            pinned: List[Migration] = []
            for migration in plan:
                with TRACER.child_span(
                    "migration.session", session=migration.session_id,
                    src=migration.src, dst=migration.dst,
                ):
                    try:
                        outcome = self._migrate_one(migration)
                    except BaseException as err:  # noqa: BLE001 - pinned
                        outcome = "failed"
                        pinned.append(migration)
                        report.failures.append({
                            "session": migration.session_id,
                            "src": migration.src,
                            "dst": migration.dst,
                            "error": repr(err),
                        })
                self._count(outcome)
                if outcome == "moved":
                    report.moved += 1
                elif outcome == "skipped":
                    report.skipped += 1
                else:
                    report.failed += 1
            sup.commit_transition(new_ring, pinned)
        report.duration_seconds = time.perf_counter() - t0
        if OBS.enabled:
            OBS.emit(
                "ring_rebalance", reason=reason, **{
                    k: v for k, v in report.to_dict().items()
                    if k not in ("reason", "failures")
                },
            )
        _LOG.info(
            "rebalance (%s) done in %.3fs: %d moved, %d failed, %d skipped",
            reason, report.duration_seconds, report.moved, report.failed,
            report.skipped,
        )
        return report


# ----------------------------------------------------------------------
# Load-adaptive scaling
# ----------------------------------------------------------------------
@dataclass
class ShardLoad:
    """One shard's load sample, as gathered by the monitor thread."""

    shard: int
    alive: bool = True
    queue_depth: int = 0
    sessions: int = 0
    heartbeat_age: float = 0.0

    def score(self) -> float:
        """Scalar pressure: queue backlog dominates, residency tiebreaks."""
        return 4.0 * float(self.queue_depth) + float(self.sessions)


@dataclass
class ScalingConfig:
    """Policy knobs of the load-adaptive :class:`ScalingController`.

    ``grow_queue_per_shard`` / ``shrink_queue_per_shard`` bound the mean
    per-shard queue depth: sustained load above the former grows the
    fleet by one shard, sustained load below the latter (with at most
    ``shrink_sessions_per_shard`` resident sessions per shard) shrinks
    it by one. ``hot_shard_factor`` triggers a weight-based rebalance
    when one shard's load score exceeds the fleet median by that factor.
    ``hysteresis`` consecutive agreeing evaluations (spaced ``interval``
    seconds) are required before any action, and ``cooldown`` seconds
    must pass after an action before the next — resize storms cannot
    happen by construction.
    """

    enabled: bool = True
    min_shards: int = 1
    max_shards: int = 8
    grow_queue_per_shard: float = 8.0
    shrink_queue_per_shard: float = 0.5
    shrink_sessions_per_shard: float = 8.0
    hot_shard_factor: float = 3.0
    hot_shard_min_score: float = 8.0
    hysteresis: int = 3
    cooldown: float = 30.0
    interval: float = 5.0

    def validate(self) -> None:
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ConfigurationError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{self.min_shards}..{self.max_shards}"
            )
        if self.hysteresis < 1:
            raise ConfigurationError(
                f"hysteresis must be >= 1, got {self.hysteresis}"
            )
        if self.interval <= 0 or self.cooldown < 0:
            raise ConfigurationError(
                "interval must be > 0 and cooldown >= 0"
            )
        if self.hot_shard_factor < 1.0:
            raise ConfigurationError(
                f"hot_shard_factor must be >= 1, got {self.hot_shard_factor}"
            )


class ScalingController:
    """Hysteresis-guarded grow/shrink/rebalance decisions from load.

    Pure decision logic (injectable clock, no I/O) so the policy is
    unit-testable without processes; the supervisor's monitor thread
    feeds it load samples and executes whatever it returns.
    """

    def __init__(
        self,
        config: Optional[ScalingConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config if config is not None else ScalingConfig()
        self.config.validate()
        self._clock = clock
        self._lock = threading.Lock()
        self._next_eval = 0.0
        self._cooldown_until = 0.0
        self._grow_streak = 0
        self._shrink_streak = 0
        self._hot_streak: Tuple[int, int] = (-1, 0)  # (shard, streak)
        self.decisions = 0

    # ------------------------------------------------------------------
    def due(self) -> bool:
        """Whether enough time has passed for the next evaluation."""
        with self._lock:
            return self.config.enabled and self._clock() >= self._next_eval

    def record_action(self) -> None:
        """Start the post-action cooldown (the supervisor calls this
        after *any* resize, operator-initiated ones included, so policy
        decisions never stack on top of a fresh manual change)."""
        with self._lock:
            self._cooldown_until = self._clock() + self.config.cooldown
            self._grow_streak = 0
            self._shrink_streak = 0
            self._hot_streak = (-1, 0)

    # ------------------------------------------------------------------
    def observe(
        self, n_shards: int, loads: List[ShardLoad]
    ) -> Optional[Dict[str, Any]]:
        """Feed one evaluation; returns a decision dict or ``None``.

        Decisions: ``{"action": "grow"|"shrink", "shards": n, "reason"}``
        or ``{"action": "rebalance", "shard": i, "reason"}``.
        """
        config = self.config
        with self._lock:
            now = self._clock()
            if not config.enabled or now < self._next_eval:
                return None
            self._next_eval = now + config.interval
            alive = [load for load in loads if load.alive]
            if not alive or now < self._cooldown_until:
                return None
            mean_queue = sum(l.queue_depth for l in alive) / len(alive)
            mean_sessions = sum(l.sessions for l in alive) / len(alive)
            scores = sorted(load.score() for load in alive)
            median = scores[len(scores) // 2]
            hottest = max(alive, key=lambda load: load.score())

            # Grow: sustained queue pressure across the fleet.
            if (
                mean_queue >= config.grow_queue_per_shard
                and n_shards < config.max_shards
            ):
                self._grow_streak += 1
                self._shrink_streak = 0
            # Shrink: sustained idleness (queues drained AND few
            # residents — a busy-but-fast fleet is left alone).
            elif (
                mean_queue <= config.shrink_queue_per_shard
                and mean_sessions <= config.shrink_sessions_per_shard
                and n_shards > config.min_shards
            ):
                self._shrink_streak += 1
                self._grow_streak = 0
            else:
                self._grow_streak = 0
                self._shrink_streak = 0

            # Hot shard: one shard far above the fleet median.
            if (
                hottest.score() >= config.hot_shard_min_score
                and hottest.score() > config.hot_shard_factor * max(median, 1.0)
            ):
                shard, streak = self._hot_streak
                self._hot_streak = (
                    (hottest.shard, streak + 1)
                    if shard == hottest.shard else (hottest.shard, 1)
                )
            else:
                self._hot_streak = (-1, 0)

            decision = None
            if self._grow_streak >= config.hysteresis:
                decision = {
                    "action": "grow",
                    "shards": n_shards + 1,
                    "reason": (
                        f"mean queue depth {mean_queue:.1f} >= "
                        f"{config.grow_queue_per_shard:g} for "
                        f"{self._grow_streak} evaluations"
                    ),
                }
            elif self._hot_streak[1] >= config.hysteresis:
                decision = {
                    "action": "rebalance",
                    "shard": self._hot_streak[0],
                    "reason": (
                        f"shard {self._hot_streak[0]} load "
                        f"{hottest.score():.1f} > "
                        f"{config.hot_shard_factor:g}x fleet median "
                        f"{median:.1f}"
                    ),
                }
            elif self._shrink_streak >= config.hysteresis:
                decision = {
                    "action": "shrink",
                    "shards": n_shards - 1,
                    "reason": (
                        f"mean queue depth {mean_queue:.2f} and "
                        f"{mean_sessions:.1f} sessions/shard for "
                        f"{self._shrink_streak} evaluations"
                    ),
                }
            if decision is not None:
                self.decisions += 1
                self._cooldown_until = now + config.cooldown
                self._grow_streak = 0
                self._shrink_streak = 0
                self._hot_streak = (-1, 0)
            return decision
