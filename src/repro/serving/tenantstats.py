"""Bounded-cardinality per-tenant accounting for the serving runtime.

Millions of sessions cannot each own a Prometheus label set or an
unbounded stats row, so :class:`TenantAccountant` keeps exact per-tenant
tallies for at most :data:`MAX_TRACKED_TENANTS` tenants and folds
everything past the cap into one aggregate ``_overflow`` row — totals
stay exact, only per-tenant resolution degrades, and the cardinality of
``/stats`` (and anything derived from it) is bounded by construction.

Per tracked tenant: request / error / degraded-serve counts, drift
events and drift-triggered policy updates (the Alg. 1 signals the
drift-scenario roadmap item needs per tenant), spill restores, and a
fixed-size latency reservoir giving p50/p95/max. ``snapshot(top=K)``
returns the top-K tenants by request count; :meth:`merge` combines
snapshots from shard workers (tenants are partitioned across shards by
the consistent-hash ring, so cross-shard rows never collide — the merge
is a concatenate + re-rank, with overflow rows summed).

The accountant is always on (it is plain dict arithmetic, far below the
request path's noise floor) and never feeds a value back into a
computation, preserving the serving path's bit-identity contract.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional

#: Exactly-tracked tenant bound; the rest share one aggregate row.
MAX_TRACKED_TENANTS = 256

#: Latency observations retained per tenant (ring buffer).
LATENCY_WINDOW = 128

#: Row key for everything past the cap (mirrors the registry's
#: overflow label value).
OVERFLOW_KEY = "_overflow"

#: Default number of rows a snapshot exposes.
DEFAULT_TOP_K = 10


class _TenantSlot:
    __slots__ = (
        "requests", "errors", "degraded", "drift_events",
        "policy_updates", "restores", "latencies", "_next",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.degraded = 0
        self.drift_events = 0
        self.policy_updates = 0
        self.restores = 0
        self.latencies: List[float] = []
        self._next = 0

    def observe_latency(self, seconds: float) -> None:
        if len(self.latencies) < LATENCY_WINDOW:
            self.latencies.append(seconds)
        else:
            self.latencies[self._next] = seconds
            self._next = (self._next + 1) % LATENCY_WINDOW

    def row(self, tenant: str) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "tenant": tenant,
            "requests": self.requests,
            "errors": self.errors,
            "degraded": self.degraded,
            "drift_events": self.drift_events,
            "policy_updates": self.policy_updates,
            "restores": self.restores,
        }
        if self.latencies:
            ordered = sorted(self.latencies)
            n = len(ordered)
            row["latency_ms"] = {
                "p50": round(ordered[n // 2] * 1e3, 3),
                "p95": round(ordered[min(n - 1, int(n * 0.95))] * 1e3, 3),
                "max": round(ordered[-1] * 1e3, 3),
                "samples": n,
            }
        return row


class TenantAccountant:
    """Thread-safe, capacity-bounded per-tenant request accounting."""

    def __init__(
        self,
        max_tenants: int = MAX_TRACKED_TENANTS,
        top_k: int = DEFAULT_TOP_K,
    ) -> None:
        self.max_tenants = int(max_tenants)
        self.top_k = int(top_k)
        self._slots: Dict[str, _TenantSlot] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _slot(self, tenant: str) -> _TenantSlot:
        slot = self._slots.get(tenant)
        if slot is None:
            if (
                len(self._slots) >= self.max_tenants
                and tenant != OVERFLOW_KEY
            ):
                return self._slot(OVERFLOW_KEY)
            slot = _TenantSlot()
            self._slots[tenant] = slot
        return slot

    def record(
        self,
        tenant: str,
        op: str,
        seconds: float,
        response: Optional[Mapping[str, Any]] = None,
        error: bool = False,
    ) -> None:
        """Account one finished request for ``tenant``.

        ``response`` is the (ok) service response dict — its ``drift``,
        ``policy_update``, and ``degraded`` fields feed the per-tenant
        signals; ``error=True`` counts a failed request instead.
        """
        with self._lock:
            slot = self._slot(str(tenant))
            slot.requests += 1
            slot.observe_latency(float(seconds))
            if error:
                slot.errors += 1
                return
            if response:
                if response.get("degraded"):
                    slot.degraded += 1
                if op == "observe":
                    if response.get("drift"):
                        slot.drift_events += 1
                    if response.get("policy_update"):
                        slot.policy_updates += 1

    def record_restore(self, tenant: str) -> None:
        """Attribute one spill restore (store hook; no latency sample)."""
        with self._lock:
            self._slot(str(tenant)).restores += 1

    # ------------------------------------------------------------------
    def snapshot(self, top: Optional[int] = None) -> Dict[str, Any]:
        """Totals plus the top-K tenants by request count.

        The overflow row (if any) always rides along regardless of its
        rank so capped-out traffic stays visible.
        """
        k = self.top_k if top is None else int(top)
        with self._lock:
            rows = [
                slot.row(tenant) for tenant, slot in self._slots.items()
            ]
            tracked = len(self._slots)
        overflow = [r for r in rows if r["tenant"] == OVERFLOW_KEY]
        ranked = sorted(
            (r for r in rows if r["tenant"] != OVERFLOW_KEY),
            key=lambda r: (-r["requests"], r["tenant"]),
        )
        return {
            "tracked": tracked,
            "cap": self.max_tenants,
            "totals": _totals(rows),
            "top": ranked[:k] + overflow,
        }

    @staticmethod
    def merge(
        snapshots: List[Dict[str, Any]], top: int = DEFAULT_TOP_K
    ) -> Dict[str, Any]:
        """Combine per-shard snapshots into one fleet-wide view.

        Shards partition tenants, so same-tenant rows across shards only
        occur for the overflow bucket — those sum; everything else is
        re-ranked. Latency quantiles keep the per-shard resolution of
        the busiest shard for a tenant (they cannot be merged exactly
        from quantiles, and a tenant lives on exactly one shard anyway).
        """
        merged: Dict[str, Dict[str, Any]] = {}
        totals = {
            "requests": 0, "errors": 0, "degraded": 0,
            "drift_events": 0, "policy_updates": 0, "restores": 0,
        }
        tracked = 0
        cap = 0
        for snapshot in snapshots:
            if not snapshot:
                continue
            tracked += snapshot.get("tracked", 0)
            cap = max(cap, snapshot.get("cap", 0))
            for field in totals:
                # Shard totals cover *all* its tenants, not just the
                # top-K rows it shipped — sum those, not the rows.
                totals[field] += snapshot.get("totals", {}).get(field, 0)
            for row in snapshot.get("top", []):
                tenant = row["tenant"]
                slot = merged.get(tenant)
                if slot is None:
                    merged[tenant] = dict(row)
                    continue
                for field in (
                    "requests", "errors", "degraded", "drift_events",
                    "policy_updates", "restores",
                ):
                    slot[field] = slot.get(field, 0) + row.get(field, 0)
                theirs = row.get("latency_ms")
                ours = slot.get("latency_ms")
                if theirs and (
                    not ours
                    or theirs.get("samples", 0) > ours.get("samples", 0)
                ):
                    slot["latency_ms"] = theirs
        rows = list(merged.values())
        overflow = [r for r in rows if r["tenant"] == OVERFLOW_KEY]
        ranked = sorted(
            (r for r in rows if r["tenant"] != OVERFLOW_KEY),
            key=lambda r: (-r["requests"], r["tenant"]),
        )
        return {
            "tracked": tracked,
            "cap": cap,
            "totals": totals,
            "top": ranked[:top] + overflow,
        }


def _totals(rows: List[Dict[str, Any]]) -> Dict[str, int]:
    totals = {
        "requests": 0, "errors": 0, "degraded": 0,
        "drift_events": 0, "policy_updates": 0, "restores": 0,
    }
    for row in rows:
        for field in totals:
            totals[field] += row.get(field, 0)
    return totals
