"""Micro-batched request execution with bounded-queue admission control.

Concurrent one-step requests land in a bounded queue; a single collector
thread coalesces whatever arrives within a small time/size budget
(``max_wait`` / ``max_batch``) into one batch and fans the work through
:func:`repro.runtime.run_ordered`. Per-series sessions are independent,
so a batch of requests for *different* sessions parallelises across the
executor's workers; requests for the same session serialise on its lock.

Backpressure is explicit and immediate:

- queue full at submit time → :class:`ServiceOverloadedError` (HTTP 429,
  the client should back off);
- a request still queued past its deadline → its future fails with
  :class:`DeadlineExceededError` (HTTP 503) *without* running, shedding
  work the caller has already given up on;
- after :meth:`close` the queue drains, then new submits are refused
  with :class:`ServiceUnavailableError`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Optional

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.obs import OBS, get_logger
from repro.obs.trace import NEW_TRACE, TRACER
from repro.runtime import ExecutorConfig, run_ordered

_LOG = get_logger("serving.batcher")


class _Request:
    __slots__ = (
        "fn", "payload", "future", "deadline", "expires_at",
        "trace_ctx", "enqueued_at",
    )

    def __init__(
        self,
        fn,
        deadline: Optional[float],
        expires_at: Optional[float] = None,
        payload: Any = None,
    ):
        self.fn = fn
        self.payload = payload
        self.future: Future = Future()
        self.deadline = deadline
        # Trace propagation across the queue hop: the submitting
        # thread's ambient context travels with the request so the
        # collector/executor threads keep the causal chain.
        self.trace_ctx = TRACER.current() if TRACER.enabled else None
        self.enqueued_at = time.time() if self.trace_ctx is not None else 0.0
        if expires_at is not None:
            self.expires_at = expires_at
        else:
            self.expires_at = (
                time.monotonic() + deadline if deadline is not None else None
            )


class _Failure:
    """Wrapper carrying an exception through ``run_ordered`` results."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def _call_request(fn: Callable[[], Any], ctx=None):
    # One failing request must not poison its batch-mates.
    try:
        if ctx is not None and TRACER.enabled:
            # Executor thread hop: reinstate the request's context so
            # store/pool/actor child spans land in its trace.
            with TRACER.span("batcher.exec", parent=ctx):
                return fn()
        return fn()
    except BaseException as err:  # noqa: BLE001 - transported to the future
        return _Failure(err)


class MicroBatcher:
    """Coalesce concurrent requests into executor-fanned micro-batches."""

    def __init__(
        self,
        *,
        max_batch: int = 16,
        max_wait: float = 0.002,
        queue_limit: int = 256,
        executor: Optional[ExecutorConfig] = None,
        group_handler: Optional[Callable[[list], list]] = None,
    ):
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if max_wait < 0:
            raise ConfigurationError(
                f"max_wait must be >= 0, got {max_wait}"
            )
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.queue_limit = int(queue_limit)
        #: When set, requests submitted with a ``payload`` are handed to
        #: this callable as one list per dispatch (the vectorised
        #: serving path) instead of being fanned out one-by-one. The
        #: handler returns one outcome per payload, aligned by index;
        #: an exception outcome fails just that request's future.
        self.group_handler = group_handler
        self.executor = (
            executor if executor is not None else ExecutorConfig("thread")
        )
        self._queue: "queue.Queue[_Request]" = queue.Queue(
            maxsize=queue_limit
        )
        self._closing = threading.Event()
        self.batches = 0
        self.shed = 0
        # EWMA of dispatch throughput (requests/second), maintained by
        # the collector thread; backs the Retry-After hint handed to
        # shed clients (how long until the queue plausibly has room).
        self._drain_rate = 0.0
        #: Grouped-dispatch tallies (plain attributes so callers can
        #: assert coalescing without the obs registry): number of
        #: stacked dispatches and total requests they carried.
        self.grouped_dispatches = 0
        self.grouped_requests = 0
        self._worker = threading.Thread(
            target=self._run, name="repro-serving-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[], Any],
        *,
        deadline: Optional[float] = None,
        expires_at: Optional[float] = None,
        payload: Any = None,
    ) -> Future:
        """Enqueue ``fn`` for the next micro-batch; returns its future.

        ``expires_at`` is an absolute ``time.monotonic()`` instant (wins
        over ``deadline``, a relative budget) — the hop that lets an
        end-to-end deadline propagate through the queue unchanged. Work
        already past its deadline is shed at submit time, before it ever
        occupies a queue slot.

        ``payload`` opts the request into the batcher's
        :attr:`group_handler` (when one is configured): all payloads of
        a dispatch are handed over together so the handler can run them
        as one vectorised pass. ``fn`` remains the single-request
        fallback used when no handler is configured.
        """
        if self._closing.is_set():
            raise ServiceUnavailableError(
                "batcher is shut down; refusing new work"
            )
        request = _Request(fn, deadline, expires_at, payload)
        if (
            request.expires_at is not None
            and time.monotonic() > request.expires_at
        ):
            self.shed += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_serving_shed_total", {"reason": "deadline"}
                ).inc()
            raise DeadlineExceededError(request.deadline)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_serving_shed_total", {"reason": "queue_full"}
                ).inc()
            raise ServiceOverloadedError(
                self._queue.qsize(), self.queue_limit,
                retry_after=self.retry_after_hint(),
            ) from None
        if OBS.enabled:
            OBS.registry.gauge("repro_serving_queue_depth").set(
                float(self._queue.qsize())
            )
        return request.future

    # ------------------------------------------------------------------
    def _collect(self) -> list:
        """Block for one request, then coalesce within the wait budget."""
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return []
        batch = [first]
        horizon = time.monotonic() + self.max_wait
        while len(batch) < self.max_batch:
            remaining = horizon - time.monotonic()
            if remaining <= 0:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            else:
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
        return batch

    def _dispatch(self, batch: list) -> None:
        now = time.monotonic()
        live = []
        for request in batch:
            if not request.future.set_running_or_notify_cancel():
                continue  # caller cancelled while queued
            if request.expires_at is not None and now > request.expires_at:
                self.shed += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "repro_serving_shed_total", {"reason": "deadline"}
                    ).inc()
                request.future.set_exception(
                    DeadlineExceededError(request.deadline)
                )
                continue
            live.append(request)
        if not live:
            return
        self.batches += 1
        if OBS.enabled:
            registry = OBS.registry
            registry.histogram("repro_serving_batch_size").observe(
                float(len(live))
            )
            registry.gauge("repro_serving_queue_depth").set(
                float(self._queue.qsize())
            )
        batch_span = None
        if TRACER.enabled:
            traced = [r for r in live if r.trace_ctx is not None]
            if traced:
                # One shared span per dispatch, in its own trace: every
                # coalesced request records a queue-wait span carrying a
                # link to it, so the assembler can join a request's
                # timeline to the batch it rode in.
                batch_span = TRACER.span(
                    "batcher.batch", parent=NEW_TRACE,
                    requests=len(live),
                    linked_traces=[
                        r.trace_ctx.trace_id for r in traced[:32]
                    ],
                )
                now_wall = time.time()
                for request in traced:
                    TRACER.record(
                        "batcher.queue", request.trace_ctx,
                        start=request.enqueued_at,
                        duration=max(0.0, now_wall - request.enqueued_at),
                        batch_span=batch_span.ctx.span_id,
                        batch_trace=batch_span.ctx.trace_id,
                    )
        if self.group_handler is not None:
            grouped = [r for r in live if r.payload is not None]
            singles = [r for r in live if r.payload is None]
            if len(grouped) == 1:
                # A lone payload gains nothing from the stacked path;
                # its per-session fallback fn is strictly cheaper.
                singles = live
                grouped = []
        else:
            grouped, singles = [], live

        def execute() -> None:
            if grouped:
                self._dispatch_grouped(grouped)
            if singles:
                results = run_ordered(
                    _call_request,
                    [(request.fn, request.trace_ctx) for request in singles],
                    self.executor,
                )
                for request, result in zip(singles, results):
                    if isinstance(result, _Failure):
                        request.future.set_exception(result.error)
                    else:
                        request.future.set_result(result)

        t0 = time.monotonic()
        if batch_span is not None:
            with batch_span:
                execute()
        else:
            execute()
        elapsed = max(1e-6, time.monotonic() - t0)
        instant = len(live) / elapsed
        self._drain_rate = (
            instant if self._drain_rate == 0.0
            else 0.3 * instant + 0.7 * self._drain_rate
        )

    def _dispatch_grouped(self, grouped: list) -> None:
        """Run payload-carrying requests through the group handler.

        The handler returns one outcome per payload (exceptions as
        values); a handler-level failure fails every grouped future but
        never the collector.
        """
        self.grouped_dispatches += 1
        self.grouped_requests += len(grouped)
        if OBS.enabled:
            OBS.registry.histogram(
                "repro_serving_batched_group_size"
            ).observe(float(len(grouped)))
        try:
            outcomes = self.group_handler(
                [request.payload for request in grouped]
            )
            if len(outcomes) != len(grouped):
                raise RuntimeError(
                    f"group handler returned {len(outcomes)} outcomes "
                    f"for {len(grouped)} requests"
                )
        except BaseException as err:  # noqa: BLE001 - fail the group only
            _LOG.error("grouped dispatch failed: %s", err)
            for request in grouped:
                request.future.set_exception(err)
            return
        for request, outcome in zip(grouped, outcomes):
            if isinstance(outcome, _Failure):
                request.future.set_exception(outcome.error)
            elif isinstance(outcome, BaseException):
                request.future.set_exception(outcome)
            else:
                request.future.set_result(outcome)

    def _run(self) -> None:
        while not (self._closing.is_set() and self._queue.empty()):
            batch = self._collect()
            if not batch:
                continue
            try:
                self._dispatch(batch)
            except BaseException as err:  # noqa: BLE001 - keep serving
                # A dispatch-level failure (executor refusal, ...) fails
                # the whole batch but must not kill the collector.
                _LOG.error("batch dispatch failed: %s", err)
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(err)
        # Drain anything that raced past the closing check.
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    ServiceUnavailableError("batcher shut down")
                )

    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, finish the queue, join the collector."""
        self._closing.set()
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():  # pragma: no cover - pathological
            _LOG.warning("batcher collector did not exit within %.1fs",
                         timeout)

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    @property
    def drain_rate(self) -> float:
        """Smoothed dispatch throughput, requests per second."""
        return self._drain_rate

    def retry_after_hint(self) -> float:
        """Suggested client back-off (seconds) after a 429.

        Queue depth over the smoothed drain rate — roughly when the
        queue will have room again — clamped to [0.05 s, 5 s]. Before
        any batch has completed (no rate yet), the floor applies.
        """
        rate = self._drain_rate
        if rate <= 0.0:
            return 0.05
        return min(5.0, max(0.05, self._queue.qsize() / rate))
