"""Bounded LRU session store with checkpoint-backed spill/restore.

Holds at most ``capacity`` resident :class:`SeriesSession` objects; the
least-recently-used unpinned session is spilled to disk when a new one
needs the slot. Spill uses :class:`repro.runtime.CheckpointManager`
(atomic payload+manifest, SHA-256 verified, corrupt snapshots
quarantined), one subdirectory per session id, so an eviction survives a
process crash and a restored session is **bit-identical** to one that
never left memory (``tests/serving/test_store.py`` proves it against an
always-resident twin).

Concurrency model: one store-level mutex guards the LRU map, pin counts,
and the spilled-id set; each session additionally carries its own RLock
(taken by ``SeriesSession.observe``), so two requests for the *same*
session serialise while requests for different sessions proceed in
parallel. :meth:`acquire` pins the session for the duration of the
caller's work — pinned sessions are never spilled mid-request.

Durability and corruption:

- :meth:`sync` checkpoints a resident session **without** evicting it —
  the write-through used by durable (shard-mode) serving, where an
  ``observe`` is only acknowledged once its state has hit the spill
  tier;
- next to each session's snapshots lives a tiny *history sidecar*
  (``history.npz``, the recent tail of the raw series) written on every
  spill/sync. When restore finds only corrupt snapshots (all
  quarantined by :class:`~repro.runtime.CheckpointManager`), the store
  raises :class:`~repro.exceptions.SessionCorruptError` and parks a
  :class:`DegradedSession` built from the sidecar, from which the
  service serves ensemble-average forecasts instead of erroring. A
  corrupt session can always be deleted and recreated — or recreated
  directly, which purges the quarantined remnants.
"""

from __future__ import annotations

import re
import shutil
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.exceptions import (
    CheckpointCorruptError,
    CheckpointError,
    ServingError,
    SessionCorruptError,
    SessionExistsError,
    SessionMigratingError,
    SessionNotFoundError,
)
from repro.obs import OBS, get_logger
from repro.obs.registry import FAST_BUCKETS
from repro.obs.trace import TRACER
from repro.persistence import (
    atomic_write_bytes,
    load_npz_bytes,
    npz_bytes,
    write_bytes_unsynced,
)
from repro.runtime import CheckpointManager
from repro.serving.session import SeriesSession

_LOG = get_logger("serving.store")

#: Session ids double as spill subdirectory names; keep them filesystem-
#: and URL-safe.
SESSION_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Snapshot kind used for spilled sessions ('-' and '/' are reserved).
SPILL_KIND = "session"

#: Sidecar filename inside a session's spill directory. Safe from the
#: CheckpointManager sweep, which only touches ``<kind>-<step>.*``.
SIDECAR_NAME = "history.npz"

#: Minimum raw-history tail length kept in the sidecar.
SIDECAR_MIN_TAIL = 128


class DegradedSession:
    """Leftover serving state of a session whose snapshots are corrupt.

    Holds the raw-history tail recovered from the sidecar plus its own
    idempotency ledger, so retried observes against a degraded session
    are exactly-once too. Created lazily the first time a restore fails
    with every snapshot quarantined.
    """

    __slots__ = ("session_id", "history", "ack_seq", "ack_response", "lock")

    def __init__(self, session_id: str, history: Optional[np.ndarray]):
        self.session_id = session_id
        self.history = (
            np.asarray(history, dtype=np.float64).copy()
            if history is not None else None
        )
        self.ack_seq: Optional[int] = None
        self.ack_response: Optional[Dict[str, Any]] = None
        self.lock = threading.RLock()


def validate_session_id(session_id: str) -> str:
    if not isinstance(session_id, str) or not SESSION_ID_PATTERN.match(
        session_id
    ):
        raise ServingError(
            f"invalid session id {session_id!r}: must match "
            f"{SESSION_ID_PATTERN.pattern}"
        )
    return session_id


class SessionStore:
    """LRU-bounded map of live sessions with transparent disk spill."""

    def __init__(
        self,
        bundle,
        *,
        capacity: int = 128,
        spill_dir: Optional[str] = None,
        keep_snapshots: int = 2,
        durable: bool = False,
    ):
        if capacity < 1:
            raise ServingError(f"capacity must be >= 1, got {capacity}")
        self.bundle = bundle
        self.capacity = int(capacity)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.keep_snapshots = int(keep_snapshots)
        #: Durable spill writes fsync payload+manifest (the write-through
        #: commit point of durable serving); non-durable treats the spill
        #: directory as a cache of live sessions — atomic but unsynced
        #: writes, several times cheaper on the LRU-churn hot path.
        self.durable = bool(durable)
        self._sessions: "OrderedDict[str, SeriesSession]" = OrderedDict()
        self._managers: Dict[str, CheckpointManager] = {}
        #: Manifest path of each session's newest spill snapshot — lets
        #: the restore path load it directly instead of re-scanning the
        #: session's directory on every acquire-miss.
        self._last_manifest: Dict[str, Path] = {}
        #: Sessions whose spill directory is known to exist (mkdir-once
        #: guard for the per-eviction sidecar write).
        self._sidecar_dirs: set = set()
        self._pins: Dict[str, int] = {}
        self._spilled: set = set()
        self._degraded: Dict[str, DegradedSession] = {}
        #: Migration tombstones: ids released to another owner. Requests
        #: that raced the handoff through the worker's queue land here
        #: and get the retryable SessionMigratingError instead of a
        #: misleading SessionNotFoundError. Cleared by adopt (the
        #: session came back), create, and close.
        self._released: set = set()
        self._lock = threading.Lock()
        # Signalled whenever a pin count drops to zero; release() waits
        # on it to quiesce a session before the final migration spill.
        self._unpinned = threading.Condition(self._lock)
        #: Optional callable ``(session_id) -> None`` invoked after each
        #: successful spill restore — the service points it at the
        #: tenant accountant so restores are attributed per tenant.
        self.restore_listener = None
        self.evictions = 0
        self.restores = 0
        self.corruptions = 0
        self.acquires = 0
        # Recent restore wall-times (seconds) for the thrash baseline
        # surfaced by stats(); bounded so a long-lived store stays O(1).
        self._restore_times: List[float] = []
        self._restore_times_cap = 1024
        min_history = getattr(bundle, "min_history", None)
        self._sidecar_tail = max(
            SIDECAR_MIN_TAIL,
            int(min_history()) if callable(min_history) else 0,
        )
        if self.spill_dir is not None and self.spill_dir.is_dir():
            # Re-adopt sessions a previous process spilled (crash or
            # graceful shutdown); they restore lazily on first access.
            for child in self.spill_dir.iterdir():
                if child.is_dir() and SESSION_ID_PATTERN.match(child.name):
                    self._spilled.add(child.name)
            if self._spilled:
                _LOG.info(
                    "adopted %d spilled session(s) from %s",
                    len(self._spilled), self.spill_dir,
                )

    # ------------------------------------------------------------------
    def _manager(self, session_id: str) -> CheckpointManager:
        if self.spill_dir is None:
            raise ServingError(
                "session store has no spill directory configured"
            )
        # Cached per session: manager construction is cheap but the
        # spill hot path runs once per evicted request at capacity.
        manager = self._managers.get(session_id)
        if manager is None:
            manager = CheckpointManager(
                self.spill_dir / session_id,
                keep=self.keep_snapshots,
                durable=self.durable,
            )
            self._managers[session_id] = manager
        return manager

    def _gauges(self) -> None:
        if OBS.enabled:
            registry = OBS.registry
            registry.gauge("repro_serving_sessions_resident").set(
                float(len(self._sessions))
            )
            registry.gauge("repro_serving_sessions_spilled").set(
                float(len(self._spilled))
            )

    # ------------------------------------------------------------------
    # Sidecar: raw-history tail for degraded-mode forecasting
    # ------------------------------------------------------------------
    def _sidecar_path(self, session_id: str) -> Path:
        return self.spill_dir / session_id / SIDECAR_NAME

    def _write_sidecar(self, session_id: str, history) -> None:
        if history is None or self.spill_dir is None:
            return
        tail = np.asarray(history, dtype=np.float64)[-self._sidecar_tail:]
        path = self._sidecar_path(session_id)
        if session_id not in self._sidecar_dirs:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._sidecar_dirs.add(session_id)
        writer = atomic_write_bytes if self.durable else write_bytes_unsynced
        writer(path, npz_bytes({"history": tail}))

    def _load_sidecar(self, session_id: str) -> Optional[np.ndarray]:
        path = self._sidecar_path(session_id)
        try:
            return load_npz_bytes(path.read_bytes())["history"]
        except Exception:  # noqa: BLE001 - a torn sidecar is best-effort
            return None

    # ------------------------------------------------------------------
    def _save_snapshot(self, session_id: str, session: SeriesSession) -> None:
        # pristine_light: a session whose agent never ran a policy update
        # spills without its network/optimizer arrays — the restorer
        # re-copies them from the bundle template, guarded by the digest
        # stamped here (a redeploy with different template weights must
        # not silently restore against them).
        arrays, meta = session.checkpoint_state(pristine_light=True)
        if meta.get("agent", {}).get("pristine"):
            digest = getattr(self.bundle, "template_digest", None)
            if callable(digest):
                meta["template_digest"] = digest()
        self._last_manifest[session_id] = self._manager(session_id).save(
            SPILL_KIND,
            session.step,
            arrays,
            meta,
            context={"session_id": session_id},
        )
        self._write_sidecar(session_id, session.history)

    def _evict_one_locked(self) -> bool:
        """Spill the LRU unpinned session; False when all are pinned."""
        victim_id = None
        for sid in self._sessions:  # insertion order == LRU order
            if self._pins.get(sid, 0) == 0:
                victim_id = sid
                break
        if victim_id is None:
            return False
        session = self._sessions.pop(victim_id)
        with TRACER.child_span("store.spill", session=victim_id):
            self._save_snapshot(victim_id, session)
        self._spilled.add(victim_id)
        self.evictions += 1
        if OBS.enabled:
            OBS.registry.counter("repro_serving_evictions_total").inc()
        _LOG.debug(
            "spilled session %s at step %d", victim_id, session.step
        )
        return True

    def _restore_locked(self, session_id: str) -> SeriesSession:
        with TRACER.child_span("store.restore", session=session_id):
            return self._restore_inner_locked(session_id)

    def _restore_inner_locked(self, session_id: str) -> SeriesSession:
        t0 = time.perf_counter()
        try:
            snapshot = None
            last = self._last_manifest.get(session_id)
            if last is not None:
                # Fast path: this process wrote the snapshot, so load
                # it directly. Any problem — moved, torn, rewritten by
                # a redeploy — falls back to the scanning path below,
                # which owns quarantine/degraded semantics.
                try:
                    candidate = self._manager(session_id).load(last)
                    if (
                        candidate.manifest.get("context", {}).get(
                            "session_id"
                        ) == session_id
                    ):
                        snapshot = candidate
                except (CheckpointError, CheckpointCorruptError, OSError):
                    self._last_manifest.pop(session_id, None)
            if snapshot is None:
                snapshot = self._manager(session_id).restore_latest(
                    SPILL_KIND, context={"session_id": session_id},
                    strict=True,
                )
        except CheckpointCorruptError as err:
            # Snapshots existed but every one was quarantined: the
            # learned state is unrecoverable. Park a DegradedSession
            # built from the sidecar so the service can keep answering.
            self._spilled.discard(session_id)
            self._degraded[session_id] = DegradedSession(
                session_id, self._load_sidecar(session_id)
            )
            self.corruptions += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_serving_corrupt_sessions_total"
                ).inc()
            _LOG.error(
                "session %s is corrupt on disk; degraded mode engaged: %s",
                session_id, err,
            )
            raise SessionCorruptError(session_id) from err
        if snapshot is None:
            # No snapshot ever landed: the session is simply gone.
            self._spilled.discard(session_id)
            raise SessionNotFoundError(session_id)
        session = self.bundle.restore_session(
            session_id, snapshot.arrays, snapshot.meta
        )
        self.restores += 1
        elapsed = time.perf_counter() - t0
        if len(self._restore_times) >= self._restore_times_cap:
            del self._restore_times[: self._restore_times_cap // 2]
        self._restore_times.append(elapsed)
        if OBS.enabled:
            OBS.registry.counter("repro_serving_restores_total").inc()
            # Sub-ms ladder: post-PR 7 restores cluster around 0.85 ms,
            # one bucket wide on the default grid.
            OBS.registry.histogram(
                "repro_serving_restore_seconds", buckets=FAST_BUCKETS
            ).observe(elapsed)
        if self.restore_listener is not None:
            # Accountant hook — takes only its own lock, never ours.
            self.restore_listener(session_id)
        _LOG.debug(
            "restored session %s at step %d", session_id, snapshot.step
        )
        return session

    def _admit_locked(self, session_id: str, session: SeriesSession) -> None:
        while len(self._sessions) >= self.capacity:
            if not self._evict_one_locked():
                # Every resident session mid-request: allow a temporary
                # soft overshoot rather than failing the caller.
                break
        self._sessions[session_id] = session
        self._sessions.move_to_end(session_id)
        self._gauges()

    # ------------------------------------------------------------------
    def create(
        self, session_id: str, history: np.ndarray, **session_kwargs
    ) -> SeriesSession:
        """Create and admit a new session (LRU-evicting if full).

        Recreating a session whose snapshots were quarantined as corrupt
        is allowed: the degraded remnants (quarantine directory and
        sidecar included) are purged and the id starts fresh.
        """
        validate_session_id(session_id)
        with self._lock:
            self._check_creatable_locked(session_id)
        # Build outside the lock: bootstrap prediction matrices are the
        # expensive part and need no shared state.
        session = self.bundle.create_session(
            session_id, history, **session_kwargs
        )
        with self._lock:
            self._check_creatable_locked(session_id)
            self._admit_locked(session_id, session)
        return session

    def _check_creatable_locked(self, session_id: str) -> None:
        if session_id in self._sessions or session_id in self._spilled:
            raise SessionExistsError(session_id)
        self._released.discard(session_id)
        if self._degraded.pop(session_id, None) is not None:
            if self.spill_dir is not None:
                shutil.rmtree(
                    self.spill_dir / session_id, ignore_errors=True
                )
            _LOG.info(
                "recreating corrupt session %s: quarantined remnants "
                "purged", session_id,
            )

    @contextmanager
    def acquire(self, session_id: str) -> Iterator[SeriesSession]:
        """Yield the (restored-if-spilled) session, pinned against spill."""
        with self._lock:
            self.acquires += 1
            if session_id in self._released:
                raise SessionMigratingError(session_id)
            if session_id in self._degraded:
                raise SessionCorruptError(session_id)
            session = self._sessions.get(session_id)
            if session is None:
                if session_id not in self._spilled:
                    raise SessionNotFoundError(session_id)
                session = self._restore_locked(session_id)
                self._admit_locked(session_id, session)
            else:
                self._sessions.move_to_end(session_id)
            self._pins[session_id] = self._pins.get(session_id, 0) + 1
        try:
            yield session
        finally:
            with self._lock:
                remaining = self._pins.get(session_id, 1) - 1
                if remaining:
                    self._pins[session_id] = remaining
                else:
                    self._pins.pop(session_id, None)
                    self._unpinned.notify_all()

    def sync(self, session_id: str) -> bool:
        """Checkpoint a resident session in place (durable write-through).

        The commit point of durable serving: an ``observe`` is only
        acknowledged after ``sync`` returns, so an acknowledged
        observation survives any subsequent crash. Spilled sessions are
        already durable; returns False for those (and for unknown ids —
        the caller holds the session via :meth:`acquire` anyway).
        """
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            return False
        with TRACER.child_span("store.checkpoint", session=session_id):
            self._save_snapshot(session_id, session)
        return True

    # ------------------------------------------------------------------
    # Migration hooks: quiesce-and-release / adopt
    # ------------------------------------------------------------------
    def release(
        self, session_id: str, *, timeout: float = 5.0
    ) -> Dict[str, Any]:
        """Quiesce a session and hand its ownership back to disk.

        The drain step of the migration protocol: wait for in-flight
        requests (pins) to finish, write one final durable checkpoint
        (idempotency ledger included — it lives in the session's
        checkpoint state), then forget the session *without* touching
        its spill directory, so the new owner can adopt the files.

        Idempotent by construction: releasing a spilled session just
        forgets it (its durable state is already on disk) and releasing
        an unknown id reports ``known=False`` instead of raising — a
        supervisor retrying a release after a worker crash must not
        fail on the replacement worker that never resurrected the
        session.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._lock:
            # Tombstone first: requests arriving from here on bounce
            # with the retryable SessionMigratingError instead of
            # piling new pins onto a session we are trying to drain.
            self._released.add(session_id)
            try:
                while self._pins.get(session_id, 0) > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServingError(
                            f"session {session_id!r} still has "
                            f"{self._pins[session_id]} in-flight "
                            f"request(s) after {timeout:.1f}s; "
                            "release aborted"
                        )
                    self._unpinned.wait(remaining)
            except BaseException:
                self._released.discard(session_id)
                raise
            session = self._sessions.pop(session_id, None)
            was_spilled = session_id in self._spilled
            self._spilled.discard(session_id)
            degraded = self._degraded.pop(session_id, None)
            step = session.step if session is not None else None
            if session is not None:
                with TRACER.child_span("store.release", session=session_id):
                    self._save_snapshot(session_id, session)
                self.evictions += 1
            elif degraded is not None and degraded.history is not None:
                # Degraded sessions have no snapshot to write, but their
                # sidecar (with any degraded-mode observations) must
                # travel with them.
                self._write_sidecar(session_id, degraded.history)
            self._managers.pop(session_id, None)
            self._last_manifest.pop(session_id, None)
            self._sidecar_dirs.discard(session_id)
            self._gauges()
            known = session is not None or was_spilled or degraded is not None
        if known:
            _LOG.debug("released session %s for migration", session_id)
        return {
            "session": session_id,
            "known": known,
            "resident": session is not None,
            "degraded": degraded is not None,
            "step": step,
        }

    def adopt(self, session_id: str) -> bool:
        """Register a session whose spill directory just arrived.

        The adopt step of the migration protocol (and of failover
        reconciliation): the session restores lazily on first access,
        exactly like a spilled session re-adopted at startup. Returns
        False when no spill directory exists — the caller decides
        whether that is an error. Idempotent for already-known ids.
        """
        validate_session_id(session_id)
        with self._lock:
            if (
                session_id in self._sessions
                or session_id in self._spilled
                or session_id in self._degraded
            ):
                self._released.discard(session_id)
                return True
            if self.spill_dir is None or not (
                self.spill_dir / session_id
            ).is_dir():
                return False
            self._released.discard(session_id)
            self._spilled.add(session_id)
            self._gauges()
        _LOG.debug("adopted migrated session %s", session_id)
        return True

    def session_ids(self) -> List[str]:
        """Every session this store answers for (any tier)."""
        with self._lock:
            return sorted(
                set(self._sessions)
                | self._spilled
                | set(self._degraded)
            )

    # ------------------------------------------------------------------
    # Degraded sessions (corrupt spill state)
    # ------------------------------------------------------------------
    def degraded_session(self, session_id: str) -> Optional[DegradedSession]:
        """The parked degraded state of a corrupt session, if any."""
        with self._lock:
            return self._degraded.get(session_id)

    def degraded_ids(self) -> List[str]:
        with self._lock:
            return list(self._degraded)

    def persist_degraded(self, session_id: str) -> None:
        """Rewrite the sidecar so degraded observations survive restarts."""
        degraded = self.degraded_session(session_id)
        if degraded is not None and degraded.history is not None:
            self._write_sidecar(session_id, degraded.history)

    def close(self, session_id: str) -> None:
        """Forget a session and delete its spill snapshots."""
        with self._lock:
            known = (
                self._sessions.pop(session_id, None) is not None
                or session_id in self._spilled
                or session_id in self._degraded
            )
            self._spilled.discard(session_id)
            self._degraded.pop(session_id, None)
            self._released.discard(session_id)
            self._managers.pop(session_id, None)
            self._last_manifest.pop(session_id, None)
            self._sidecar_dirs.discard(session_id)
            self._gauges()
        if not known:
            raise SessionNotFoundError(session_id)
        if self.spill_dir is not None:
            shutil.rmtree(self.spill_dir / session_id, ignore_errors=True)

    # ------------------------------------------------------------------
    def spill_all(self) -> int:
        """Checkpoint every resident session to disk (shutdown path)."""
        spilled = 0
        with self._lock:
            for sid in list(self._sessions):
                if self._evict_one_locked():
                    spilled += 1
            self._gauges()
        return spilled

    def resident_ids(self) -> list:
        with self._lock:
            return list(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return (
                session_id in self._sessions
                or session_id in self._spilled
                or session_id in self._degraded
            )

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._sessions)
                + len(self._spilled)
                + len(self._degraded)
            )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            times = np.asarray(self._restore_times)
            return {
                "resident": len(self._sessions),
                "spilled": len(self._spilled),
                "degraded": len(self._degraded),
                "capacity": self.capacity,
                "pinned": sum(1 for n in self._pins.values() if n > 0),
                "evictions": self.evictions,
                "restores": self.restores,
                "corruptions": self.corruptions,
                "acquires": self.acquires,
                # Thrash baseline for eviction-policy work: how often an
                # acquire paid a disk restore, and what one cost.
                "restores_per_acquire": (
                    self.restores / self.acquires if self.acquires else 0.0
                ),
                "restore_latency_ms": {
                    "p50": float(np.percentile(times, 50) * 1e3),
                    "p95": float(np.percentile(times, 95) * 1e3),
                } if times.size else None,
            }
