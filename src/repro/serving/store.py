"""Bounded LRU session store with checkpoint-backed spill/restore.

Holds at most ``capacity`` resident :class:`SeriesSession` objects; the
least-recently-used unpinned session is spilled to disk when a new one
needs the slot. Spill uses :class:`repro.runtime.CheckpointManager`
(atomic payload+manifest, SHA-256 verified, corrupt snapshots
quarantined), one subdirectory per session id, so an eviction survives a
process crash and a restored session is **bit-identical** to one that
never left memory (``tests/serving/test_store.py`` proves it against an
always-resident twin).

Concurrency model: one store-level mutex guards the LRU map, pin counts,
and the spilled-id set; each session additionally carries its own RLock
(taken by ``SeriesSession.observe``), so two requests for the *same*
session serialise while requests for different sessions proceed in
parallel. :meth:`acquire` pins the session for the duration of the
caller's work — pinned sessions are never spilled mid-request.
"""

from __future__ import annotations

import re
import shutil
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

import numpy as np

from repro.exceptions import (
    ServingError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.obs import OBS, get_logger
from repro.runtime import CheckpointManager
from repro.serving.session import SeriesSession

_LOG = get_logger("serving.store")

#: Session ids double as spill subdirectory names; keep them filesystem-
#: and URL-safe.
SESSION_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Snapshot kind used for spilled sessions ('-' and '/' are reserved).
SPILL_KIND = "session"


def validate_session_id(session_id: str) -> str:
    if not isinstance(session_id, str) or not SESSION_ID_PATTERN.match(
        session_id
    ):
        raise ServingError(
            f"invalid session id {session_id!r}: must match "
            f"{SESSION_ID_PATTERN.pattern}"
        )
    return session_id


class SessionStore:
    """LRU-bounded map of live sessions with transparent disk spill."""

    def __init__(
        self,
        bundle,
        *,
        capacity: int = 128,
        spill_dir: Optional[str] = None,
        keep_snapshots: int = 2,
    ):
        if capacity < 1:
            raise ServingError(f"capacity must be >= 1, got {capacity}")
        self.bundle = bundle
        self.capacity = int(capacity)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.keep_snapshots = int(keep_snapshots)
        self._sessions: "OrderedDict[str, SeriesSession]" = OrderedDict()
        self._pins: Dict[str, int] = {}
        self._spilled: set = set()
        self._lock = threading.Lock()
        self.evictions = 0
        self.restores = 0
        if self.spill_dir is not None and self.spill_dir.is_dir():
            # Re-adopt sessions a previous process spilled (crash or
            # graceful shutdown); they restore lazily on first access.
            for child in self.spill_dir.iterdir():
                if child.is_dir() and SESSION_ID_PATTERN.match(child.name):
                    self._spilled.add(child.name)
            if self._spilled:
                _LOG.info(
                    "adopted %d spilled session(s) from %s",
                    len(self._spilled), self.spill_dir,
                )

    # ------------------------------------------------------------------
    def _manager(self, session_id: str) -> CheckpointManager:
        if self.spill_dir is None:
            raise ServingError(
                "session store has no spill directory configured"
            )
        return CheckpointManager(
            self.spill_dir / session_id, keep=self.keep_snapshots
        )

    def _gauges(self) -> None:
        if OBS.enabled:
            registry = OBS.registry
            registry.gauge("repro_serving_sessions_resident").set(
                float(len(self._sessions))
            )
            registry.gauge("repro_serving_sessions_spilled").set(
                float(len(self._spilled))
            )

    # ------------------------------------------------------------------
    def _evict_one_locked(self) -> bool:
        """Spill the LRU unpinned session; False when all are pinned."""
        victim_id = None
        for sid in self._sessions:  # insertion order == LRU order
            if self._pins.get(sid, 0) == 0:
                victim_id = sid
                break
        if victim_id is None:
            return False
        session = self._sessions.pop(victim_id)
        arrays, meta = session.checkpoint_state()
        self._manager(victim_id).save(
            SPILL_KIND,
            session.step,
            arrays,
            meta,
            context={"session_id": victim_id},
        )
        self._spilled.add(victim_id)
        self.evictions += 1
        if OBS.enabled:
            OBS.registry.counter("repro_serving_evictions_total").inc()
        _LOG.debug(
            "spilled session %s at step %d", victim_id, session.step
        )
        return True

    def _restore_locked(self, session_id: str) -> SeriesSession:
        snapshot = self._manager(session_id).restore_latest(
            SPILL_KIND, context={"session_id": session_id}
        )
        if snapshot is None:
            # Every snapshot corrupt or missing: the session is gone.
            self._spilled.discard(session_id)
            raise SessionNotFoundError(session_id)
        session = self.bundle.restore_session(
            session_id, snapshot.arrays, snapshot.meta
        )
        self.restores += 1
        if OBS.enabled:
            OBS.registry.counter("repro_serving_restores_total").inc()
        _LOG.debug(
            "restored session %s at step %d", session_id, snapshot.step
        )
        return session

    def _admit_locked(self, session_id: str, session: SeriesSession) -> None:
        while len(self._sessions) >= self.capacity:
            if not self._evict_one_locked():
                # Every resident session mid-request: allow a temporary
                # soft overshoot rather than failing the caller.
                break
        self._sessions[session_id] = session
        self._sessions.move_to_end(session_id)
        self._gauges()

    # ------------------------------------------------------------------
    def create(
        self, session_id: str, history: np.ndarray, **session_kwargs
    ) -> SeriesSession:
        """Create and admit a new session (LRU-evicting if full)."""
        validate_session_id(session_id)
        with self._lock:
            if session_id in self._sessions or session_id in self._spilled:
                raise SessionExistsError(session_id)
        # Build outside the lock: bootstrap prediction matrices are the
        # expensive part and need no shared state.
        session = self.bundle.create_session(
            session_id, history, **session_kwargs
        )
        with self._lock:
            if session_id in self._sessions or session_id in self._spilled:
                raise SessionExistsError(session_id)
            self._admit_locked(session_id, session)
        return session

    @contextmanager
    def acquire(self, session_id: str) -> Iterator[SeriesSession]:
        """Yield the (restored-if-spilled) session, pinned against spill."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                if session_id not in self._spilled:
                    raise SessionNotFoundError(session_id)
                session = self._restore_locked(session_id)
                self._admit_locked(session_id, session)
            else:
                self._sessions.move_to_end(session_id)
            self._pins[session_id] = self._pins.get(session_id, 0) + 1
        try:
            yield session
        finally:
            with self._lock:
                remaining = self._pins.get(session_id, 1) - 1
                if remaining:
                    self._pins[session_id] = remaining
                else:
                    self._pins.pop(session_id, None)

    def close(self, session_id: str) -> None:
        """Forget a session and delete its spill snapshots."""
        with self._lock:
            known = (
                self._sessions.pop(session_id, None) is not None
                or session_id in self._spilled
            )
            self._spilled.discard(session_id)
            self._gauges()
        if not known:
            raise SessionNotFoundError(session_id)
        if self.spill_dir is not None:
            shutil.rmtree(self.spill_dir / session_id, ignore_errors=True)

    # ------------------------------------------------------------------
    def spill_all(self) -> int:
        """Checkpoint every resident session to disk (shutdown path)."""
        spilled = 0
        with self._lock:
            for sid in list(self._sessions):
                if self._evict_one_locked():
                    spilled += 1
            self._gauges()
        return spilled

    def resident_ids(self) -> list:
        with self._lock:
            return list(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return (
                session_id in self._sessions or session_id in self._spilled
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions) + len(self._spilled)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "resident": len(self._sessions),
                "spilled": len(self._spilled),
                "capacity": self.capacity,
                "pinned": sum(1 for n in self._pins.values() if n > 0),
                "evictions": self.evictions,
                "restores": self.restores,
            }
