"""Graceful-shutdown signal plumbing for long-running commands.

:class:`GracefulShutdown` latches SIGTERM/SIGINT into a
:class:`threading.Event`, so ``repro serve`` (and long ``repro
forecast`` runs) can flush session checkpoints and telemetry sinks
instead of dying mid-write. Two usage shapes:

- **event-loop shape** (``repro serve``): the main thread blocks on
  :meth:`wait` while worker threads serve traffic; on signal the wait
  returns and the main thread runs :meth:`drain` — registered flush
  callbacks execute in ordinary thread context, never inside the signal
  handler (where arbitrary locks may be mid-acquire).
- **busy-loop shape** (``repro forecast``): construct with
  ``interrupt=True``; the first signal raises :class:`KeyboardInterrupt`
  in the main thread (the standard Ctrl-C mechanism, which SIGTERM now
  shares), unwinding the forecast loop into the CLI's ``finally`` block
  where sinks are flushed. Crash-safe loop checkpoints mean no forecast
  state is lost either way.

A second signal while the drain is running is **absorbed**: an
impatient repeat Ctrl-C (or a supervisor that sends SIGTERM twice) must
not re-run flush callbacks or raise mid-flush — :meth:`drain` runs its
callbacks exactly once. A *third* signal falls through to the previous
handler (normally: die hard), so an operator can still force-kill a
wedged flush. Handlers must be installed from the main thread (a
CPython restriction); :meth:`install` becomes a no-op elsewhere so
library code can use the class unconditionally.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, List, Optional

from repro.obs import OBS, get_logger

_LOG = get_logger("serving.lifecycle")

_DEFAULT_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class GracefulShutdown:
    """One-shot shutdown latch wired to process signals."""

    def __init__(self, signals=_DEFAULT_SIGNALS, interrupt: bool = False):
        self.signals = tuple(signals)
        self.interrupt = bool(interrupt)
        self.triggered = threading.Event()
        self.signal_name: Optional[str] = None
        self._callbacks: List[Callable[[], None]] = []
        self._previous: dict = {}
        self._installed = False
        self._drained = False
        self._drain_lock = threading.Lock()
        self._repeat_signals = 0

    # ------------------------------------------------------------------
    def install(self) -> "GracefulShutdown":
        """Install handlers (main thread only; no-op elsewhere)."""
        if threading.current_thread() is not threading.main_thread():
            _LOG.debug(
                "not installing signal handlers outside the main thread"
            )
            return self
        for signum in self.signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        self._installed = True
        return self

    def restore(self) -> None:
        """Put the previous signal handlers back (idempotent)."""
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.restore()

    # ------------------------------------------------------------------
    def on_shutdown(self, callback: Callable[[], None]) -> None:
        """Register a flush callback for :meth:`drain`."""
        self._callbacks.append(callback)

    def request(self, reason: str = "manual") -> None:
        """Trigger the latch programmatically (tests, admin endpoints)."""
        if self.signal_name is None:
            self.signal_name = reason
        self.triggered.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown has been requested."""
        return self.triggered.wait(timeout)

    @property
    def requested(self) -> bool:
        return self.triggered.is_set()

    def drain(self) -> None:
        """Run the flush callbacks once, in registration order.

        Callback failures are logged and skipped — a broken sink must
        not stop session checkpoints from flushing. Emits the
        ``service_shutdown_signal`` telemetry event afterwards.
        """
        with self._drain_lock:
            if self._drained:
                return
            self._drained = True
        for callback in self._callbacks:
            try:
                callback()
            except Exception as err:  # noqa: BLE001 - flush what we can
                _LOG.error("shutdown callback failed: %r", err)
        if OBS.enabled:
            OBS.emit(
                "service_shutdown_signal",
                signal=self.signal_name or "unknown",
            )

    # ------------------------------------------------------------------
    def _handle(self, signum, frame) -> None:
        name = signal.Signals(signum).name
        if self.triggered.is_set():
            self._repeat_signals += 1
            if self._repeat_signals == 1:
                # Second signal: the drain is (about to be) running —
                # absorb it. Re-raising here would unwind the flush
                # mid-write; re-running callbacks would double-flush.
                _LOG.warning(
                    "second %s during shutdown: drain in progress; "
                    "absorbing (a third falls through)", name,
                )
                return
            # Third signal: restore and re-deliver so a stuck flush can
            # still be interrupted the ordinary way.
            _LOG.warning("repeated %s; falling through to default", name)
            previous = self._previous.get(signum, signal.SIG_DFL)
            signal.signal(signum, previous)
            if callable(previous):
                previous(signum, frame)
            else:
                signal.raise_signal(signum)
            return
        self.signal_name = name
        self.triggered.set()
        _LOG.info("received %s; beginning graceful shutdown", name)
        if self.interrupt:
            raise KeyboardInterrupt(name)
