"""Versioned consistent-hash ring with weighted nodes.

Extracted from :mod:`repro.serving.supervisor` so the placement
function has a life of its own: the supervisor routes sessions with it,
the rebalancer diffs two ring versions to plan migrations, and the
chaos/property tests can exercise placement without any processes.

Properties the elastic runtime leans on:

- **stability** — placement depends only on ``(key, nodes, weights,
  vnodes)``; a restarted supervisor with the same ring routes every
  session back to the shard whose spill subtree holds its checkpoints.
  The vnode label format (``shard-<i>-vn-<v>``) is frozen: changing it
  would silently strand every spilled session;
- **minimal disruption** — growing or shrinking by one shard moves only
  the keys owned by the added/removed vnodes, ~``K/n`` of the key set,
  never a full reshuffle (``tests/serving/test_ring.py`` bounds the
  moved fraction at ``1.5 * K/n``);
- **weighted nodes** — a shard's weight scales its vnode count.
  Lowering a weight removes that shard's *highest-index* vnodes, so the
  only keys that move are keys moving **off** the hot shard — the
  primitive behind hot-shard rebalancing;
- **versioning** — every derived ring (:meth:`resized`,
  :meth:`reweighted`) carries ``version + 1``; the rebalancer tags each
  migration with the (old, new) version pair and the supervisor
  persists the live ring (:meth:`to_dict`) so a crash mid-resize
  recovers onto one well-defined ownership map.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Virtual nodes per unit of shard weight (smooths the partition).
#: CRC32 mixes these short labels unevenly, so the count is set high
#: enough that per-shard ownership stays within the balance / minimal-
#: disruption bounds pinned by ``tests/serving/test_ring.py`` up to 32
#: shards (8k points at 32 shards — still microseconds to build).
VNODES = 256

#: Weights below this are treated as "no vnodes at all" (a fully
#: drained shard); tiny positive weights would still round up to one
#: vnode and keep attracting keys.
MIN_WEIGHT = 1e-3


def _hash_point(label: str) -> int:
    return zlib.crc32(label.encode()) & 0xFFFFFFFF


class HashRing:
    """Consistent CRC32 hash ring with virtual nodes and versioning.

    ``weights`` holds one float per shard (default 1.0 each); shard
    ``i`` owns ``round(vnodes * weights[i])`` virtual nodes labelled
    ``shard-i-vn-0 .. shard-i-vn-(count-1)``. Because a weight change
    only adds or removes the *tail* of a shard's vnode list, every
    derived ring disturbs the smallest possible key set.
    """

    def __init__(
        self,
        n_shards: int,
        vnodes: int = VNODES,
        *,
        weights: Optional[Sequence[float]] = None,
        version: int = 0,
    ):
        if n_shards < 1:
            raise ConfigurationError(
                f"hash ring needs >= 1 shard, got {n_shards}"
            )
        if vnodes < 1:
            raise ConfigurationError(
                f"hash ring needs >= 1 vnode per shard, got {vnodes}"
            )
        if weights is None:
            weights = [1.0] * n_shards
        weights = [float(w) for w in weights]
        if len(weights) != n_shards:
            raise ConfigurationError(
                f"ring weights length {len(weights)} != shard count "
                f"{n_shards}"
            )
        if any(w < 0 for w in weights):
            raise ConfigurationError("ring weights must be >= 0")
        self.n_shards = int(n_shards)
        self.vnodes = int(vnodes)
        self.version = int(version)
        self.weights: Tuple[float, ...] = tuple(weights)
        points: List[int] = []
        owners: List[int] = []
        pairs = sorted(
            (_hash_point(f"shard-{shard}-vn-{v}"), shard)
            for shard in range(n_shards)
            for v in range(self._vnode_count(shard))
        )
        for point, owner in pairs:
            points.append(point)
            owners.append(owner)
        if not points:
            raise ConfigurationError(
                "ring has no vnodes: every shard weight is ~0"
            )
        self._points = points
        self._owners = owners

    def _vnode_count(self, shard: int) -> int:
        weight = self.weights[shard]
        if weight < MIN_WEIGHT:
            return 0
        return max(1, round(self.vnodes * weight))

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> int:
        h = zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF
        index = bisect.bisect_right(self._points, h)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def vnode_counts(self) -> List[int]:
        """Virtual nodes currently owned by each shard."""
        return [self._vnode_count(shard) for shard in range(self.n_shards)]

    # ------------------------------------------------------------------
    # Derived rings (each bumps the version)
    # ------------------------------------------------------------------
    def resized(self, n_shards: int) -> "HashRing":
        """A ring with ``n_shards`` shards (grow appends unit-weight
        shards; shrink drops the highest-index shards), version + 1."""
        if n_shards < 1:
            raise ConfigurationError(
                f"cannot resize ring to {n_shards} shard(s)"
            )
        if n_shards >= self.n_shards:
            weights = list(self.weights) + [1.0] * (
                n_shards - self.n_shards
            )
        else:
            weights = list(self.weights[:n_shards])
        return HashRing(
            n_shards, self.vnodes, weights=weights,
            version=self.version + 1,
        )

    def reweighted(self, shard: int, weight: float) -> "HashRing":
        """A ring with ``shard``'s weight replaced, version + 1."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} outside ring of {self.n_shards}"
            )
        if weight < 0:
            raise ConfigurationError(f"weight must be >= 0, got {weight}")
        weights = list(self.weights)
        weights[shard] = float(weight)
        return HashRing(
            self.n_shards, self.vnodes, weights=weights,
            version=self.version + 1,
        )

    # ------------------------------------------------------------------
    # Diffing
    # ------------------------------------------------------------------
    @staticmethod
    def ownership_diff(
        old: "HashRing", new: "HashRing", keys: Iterable[str]
    ) -> Dict[str, Tuple[int, int]]:
        """``{key: (old_owner, new_owner)}`` for every key that moves."""
        moved: Dict[str, Tuple[int, int]] = {}
        for key in keys:
            src = old.shard_for(key)
            dst = new.shard_for(key)
            if src != dst:
                moved[key] = (src, dst)
        return moved

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_shards": self.n_shards,
            "vnodes": self.vnodes,
            "version": self.version,
            "weights": list(self.weights),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HashRing":
        return cls(
            int(payload["n_shards"]),
            int(payload.get("vnodes", VNODES)),
            weights=payload.get("weights"),
            version=int(payload.get("version", 0)),
        )

    def describe(self) -> Dict[str, Any]:
        """Operator-facing ring summary (``GET /admin/ring``)."""
        return dict(self.to_dict(), vnode_counts=self.vnode_counts())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing(n_shards={self.n_shards}, vnodes={self.vnodes}, "
            f"version={self.version}, weights={list(self.weights)})"
        )
