"""Transport-agnostic multi-tenant online forecasting service.

:class:`ForecastService` composes the serving subsystem — the shared
:class:`~repro.serving.bundle.ModelBundle`, the LRU
:class:`~repro.serving.store.SessionStore`, and the
:class:`~repro.serving.batcher.MicroBatcher` — behind five operations
(``create_session``, ``observe``, ``predict``, ``close_session``,
``session_info``) plus ``health``/``stats``. The HTTP frontend
(:mod:`repro.serving.http`) and in-process callers (the benchmark, the
tests) speak to the same object, so admission control, the circuit
breaker, and the metrics are exercised identically in both.

Failure taxonomy (the HTTP layer maps these one-to-one onto status
codes):

- :class:`ServiceOverloadedError` — bounded queue full, HTTP 429;
- :class:`DeadlineExceededError` — request missed its latency budget,
  HTTP 503;
- :class:`ServiceUnavailableError` — circuit open or shutting down,
  HTTP 503;
- :class:`SessionNotFoundError` / :class:`SessionExistsError` — 404/409;
- :class:`DataValidationError`/:class:`ConfigurationError` — 400.

The circuit breaker counts only *internal* errors (bugs, corrupt
snapshots) — overload, deadlines, and client mistakes never trip it, so
a misbehaving client cannot blacken the service for everyone else.
"""

from __future__ import annotations

import contextlib
import tempfile
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    DeadlineExceededError,
    ServiceUnavailableError,
    ServingError,
    SessionCorruptError,
)
from repro.obs import OBS, get_logger, render_prom_text
from repro.obs.registry import FAST_BUCKETS
from repro.obs.trace import NOOP_TRACE_SPAN, TRACER
from repro.runtime import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    ExecutorConfig,
    coerce_deadline,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.store import SessionStore
from repro.serving.tenantstats import TenantAccountant

_LOG = get_logger("serving.service")


@dataclass
class ServiceConfig:
    """Operational knobs of the forecasting service.

    Attributes
    ----------
    max_sessions:
        Resident-session bound of the LRU store; excess sessions spill
        to ``spill_dir``.
    spill_dir:
        Checkpoint directory for evicted sessions. ``None`` creates a
        fresh temporary directory (sessions then do not survive a
        process restart).
    queue_limit:
        Admission bound: requests beyond this are rejected immediately
        with :class:`ServiceOverloadedError`.
    deadline:
        Per-request latency budget in seconds; requests that cannot
        start (or finish) within it fail with
        :class:`DeadlineExceededError`.
    batch_wait / batch_size:
        Micro-batch coalescing budget: how long the collector waits for
        company and the largest batch it forms.
    batched_inference:
        Coalesce the ``observe`` requests of one micro-batch into a
        single stacked actor forward plus vectorised pool evaluation
        (bit-identical to the per-session path by construction).
        Requests the stacked pass cannot take — duplicate session ids
        within one batch, acquire failures, heterogeneous agents, or an
        agent class without a native batched policy (``batchable``
        False, e.g. SAC) — fall back to the unchanged per-session path
        automatically.
    agent:
        When set, the registry name the served bundle's policy agent
        must carry (e.g. ``"td3"``); a mismatch fails service
        construction with :class:`ConfigurationError` instead of
        surfacing at the first observe. ``None`` serves any bundle.
    executor / n_jobs:
        Backend fanning a batch across sessions
        (:class:`repro.runtime.ExecutorConfig` semantics).
        ``executor="process"`` selects the supervised shard runtime —
        sessions are stateful, so process isolation means dedicated
        shard *workers* (:class:`repro.serving.supervisor.ShardSupervisor`
        via :func:`make_service`), not a process pool inside one
        :class:`ForecastService`.
    shards:
        Number of supervised shard workers when the shard runtime is
        selected. ``0`` picks a default from the CPU count.
    durable:
        Acknowledge ``observe`` only after the session state has been
        checkpointed to the spill tier (write-through). Required for the
        zero-lost-acknowledgements guarantee under worker crashes.
    degraded_mode:
        Serve a pool ensemble-average forecast flagged ``degraded: true``
        for sessions whose checkpoints are corrupt, instead of failing
        the request.
    breaker_threshold / breaker_cooldown:
        Consecutive internal errors tripping the service breaker, and
        the denied-call count absorbed before a half-open probe.
    trace_dir:
        When set, distributed request tracing is enabled: every process
        of the runtime (frontend, shard workers) appends its spans to
        its own JSONL file under this directory, assembled offline by
        ``repro trace`` / :class:`repro.obs.TraceAssembler`. ``None``
        (the default) keeps the one-attribute-check no-op fast path.
    worker_telemetry:
        Enable a registry-only telemetry session inside shard worker
        processes so the supervisor can merge their
        :class:`~repro.obs.MetricsRegistry` snapshots into one
        ``/metrics`` output. Set automatically by the supervisor when
        the frontend has telemetry or tracing on.
    """

    max_sessions: int = 128
    spill_dir: Optional[str] = None
    queue_limit: int = 256
    deadline: float = 2.0
    batch_wait: float = 0.002
    batch_size: int = 16
    batched_inference: bool = True
    agent: Optional[str] = None
    executor: str = "thread"
    n_jobs: Optional[int] = None
    shards: int = 0
    autoscale: bool = False
    min_shards: int = 1
    max_shards: int = 8
    durable: bool = False
    degraded_mode: bool = True
    breaker_threshold: int = 5
    breaker_cooldown: int = 50
    trace_dir: Optional[str] = None
    worker_telemetry: bool = False

    def validate(self) -> None:
        if self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be > 0 seconds, got {self.deadline}"
            )
        if self.executor != "process":
            # The shard runtime owns the process backend; everything
            # else must be a valid in-process executor.
            ExecutorConfig(self.executor, self.n_jobs).validate()
        if self.shards < 0:
            raise ConfigurationError(
                f"shards must be >= 0, got {self.shards}"
            )
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ConfigurationError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{self.min_shards}..{self.max_shards}"
            )
        if self.breaker_threshold < 1 or self.breaker_cooldown < 1:
            raise ConfigurationError(
                "breaker_threshold and breaker_cooldown must be >= 1"
            )

    def wants_shards(self) -> bool:
        """Whether this config selects the supervised shard runtime."""
        return (
            self.executor == "process"
            or self.shards > 0
            or self.autoscale
        )


class ForecastService:
    """Multi-tenant online forecasting core (transport-agnostic)."""

    def __init__(self, bundle, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        if self.config.executor == "process":
            raise ConfigurationError(
                "executor='process' selects the supervised shard "
                "runtime: build the service with "
                "repro.serving.make_service(bundle, config) (or "
                "ShardSupervisor directly) instead of ForecastService"
            )
        if (
            self.config.agent is not None
            and self.config.agent != bundle.agent_name
        ):
            raise ConfigurationError(
                f"service configured for agent {self.config.agent!r} but "
                f"the bundle serves a {bundle.agent_name!r} policy"
            )
        self.bundle = bundle
        self._owns_tracer = False
        if self.config.trace_dir and not TRACER.enabled:
            # Shard workers enable their tracer (with a shard role)
            # before building their service, so this only fires for
            # in-process deployments and the plain-service path.
            TRACER.enable(self.config.trace_dir, "service")
            self._owns_tracer = True
        spill_dir = self.config.spill_dir
        if spill_dir is None:
            spill_dir = tempfile.mkdtemp(prefix="repro-serving-")
            _LOG.info("no spill_dir configured; using %s", spill_dir)
        self.tenants = TenantAccountant()
        self.store = SessionStore(
            bundle,
            capacity=self.config.max_sessions,
            spill_dir=spill_dir,
            durable=self.config.durable,
        )
        # Spill restores are attributed per tenant (bounded by the
        # accountant's cap, never per raw session id in the registry).
        self.store.restore_listener = self.tenants.record_restore
        self.batcher = MicroBatcher(
            max_batch=self.config.batch_size,
            max_wait=self.config.batch_wait,
            queue_limit=self.config.queue_limit,
            executor=ExecutorConfig(self.config.executor, self.config.n_jobs),
            group_handler=(
                self._observe_batch
                if self.config.batched_inference else None
            ),
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_steps=self.config.breaker_cooldown,
            on_transition=self._on_breaker_transition,
        )
        self._breaker_lock = threading.Lock()
        self._shutting_down = threading.Event()
        self._started_at = time.time()

    # ------------------------------------------------------------------
    def _on_breaker_transition(self, old, new) -> None:
        _LOG.warning("service breaker %s -> %s", old.value, new.value)
        if OBS.enabled:
            OBS.emit(
                "service_breaker", old=old.value, new=new.value
            )
            OBS.registry.gauge("repro_serving_breaker_open").set(
                1.0 if new is BreakerState.OPEN else 0.0
            )

    def _admit(self) -> None:
        if self._shutting_down.is_set():
            raise ServiceUnavailableError(
                "service is shutting down; refusing new requests"
            )
        with self._breaker_lock:
            allowed = self.breaker.allow()
        if not allowed:
            raise ServiceUnavailableError(
                "service circuit breaker is open (recent internal "
                "errors); retry after cooldown"
            )

    def _observe_outcome(self, error: Optional[BaseException]) -> None:
        """Feed the breaker: internal errors only, never client faults."""
        if error is None:
            with self._breaker_lock:
                self.breaker.record_success()
            return
        internal = not isinstance(
            error, (ServingError, DataValidationError, ConfigurationError)
        )
        if internal:
            with self._breaker_lock:
                self.breaker.record_failure()

    def _timed(self, op: str, fn, tenant: Optional[str] = None):
        """Run one operation with request metrics, the ``service.<op>``
        trace span, per-tenant accounting, and breaker accounting."""
        span = NOOP_TRACE_SPAN
        if TRACER.enabled:
            span = (
                TRACER.span(f"service.{op}", session=tenant)
                if tenant is not None
                else TRACER.span(f"service.{op}")
            )
        start = time.perf_counter()
        status = "ok"
        result = None
        try:
            with span:
                result = fn()
            self._observe_outcome(None)
            return result
        except BaseException as err:
            status = _status_label(err)
            self._observe_outcome(err)
            raise
        finally:
            elapsed = time.perf_counter() - start
            if tenant is not None:
                self.tenants.record(
                    tenant, op, elapsed,
                    response=result if status == "ok" else None,
                    error=status != "ok",
                )
            if OBS.enabled:
                registry = OBS.registry
                registry.histogram(
                    "repro_serving_request_seconds", {"op": op}
                ).observe(elapsed)
                registry.counter(
                    "repro_serving_requests_total",
                    {"op": op, "status": status},
                ).inc()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def create_session(
        self, session_id: str, history, **session_kwargs
    ) -> Dict[str, Any]:
        """Admit a new tenant series; returns its description."""
        def run():
            self._admit()
            history_arr = np.asarray(history, dtype=np.float64)
            session = self.store.create(
                session_id, history_arr, **session_kwargs
            )
            return session.describe()

        return self._timed("create", run, tenant=session_id)

    def _deadline(self, deadline) -> Deadline:
        return coerce_deadline(deadline, self.config.deadline)

    def _submit(self, fn, deadline: Deadline, payload=None):
        """Push work through the batcher and wait out the deadline."""
        expires_at = None if deadline.unbounded else deadline.expires_at
        future = self.batcher.submit(
            fn,
            deadline=self.config.deadline,
            expires_at=expires_at,
            payload=payload,
        )
        # Grace beyond the deadline covers work that *started* in time;
        # a hang four budgets long is treated as unavailability.
        timeout = (
            self.config.deadline * 4
            if deadline.unbounded
            else deadline.remaining() + self.config.deadline
        )
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise ServiceUnavailableError(
                "request did not complete within its deadline grace "
                "period"
            ) from None

    def observe(
        self,
        session_id: str,
        value: float,
        *,
        seq: Optional[int] = None,
        deadline=None,
    ) -> Dict[str, Any]:
        """Feed one realised value; returns the next-step forecast.

        ``seq`` makes the call idempotent: a strictly increasing
        per-session sequence number. Retrying the last acknowledged
        ``seq`` returns the cached response without advancing the
        session, so a retry after a crash can never double-apply an
        observation. ``deadline`` is the remaining end-to-end budget
        (seconds, or a :class:`~repro.runtime.Deadline`).
        """
        dl = self._deadline(deadline)

        def run():
            self._admit()
            return self._submit(
                lambda: self._observe_inner(session_id, value, seq),
                dl,
                payload=(
                    (session_id, value, seq)
                    if self.config.batched_inference else None
                ),
            )

        return self._timed("observe", run, tenant=session_id)

    def _check_seq(self, holder, seq: Optional[int], session_id: str):
        """Idempotency ledger: cached response for a duplicate, error
        for a stale or gapped sequence number, None to proceed."""
        if seq is None or holder.ack_seq is None:
            return None
        if seq == holder.ack_seq:
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_serving_duplicate_observe_total"
                ).inc()
            return dict(holder.ack_response, duplicate=True)
        if seq <= holder.ack_seq:
            raise DataValidationError(
                f"stale sequence number {seq} for session "
                f"{session_id!r}: already acknowledged {holder.ack_seq}"
            )
        if seq != holder.ack_seq + 1:
            raise DataValidationError(
                f"sequence gap for session {session_id!r}: got {seq} "
                f"after {holder.ack_seq}"
            )
        return None

    def _observe_inner(
        self, session_id: str, value: float, seq: Optional[int] = None
    ) -> Dict[str, Any]:
        try:
            with self.store.acquire(session_id) as session:
                with session.lock:
                    cached = self._check_seq(session, seq, session_id)
                    if cached is not None:
                        return cached
                    with TRACER.child_span(
                        "session.step", session=session_id
                    ):
                        forecast = session.observe(float(value))
                    response = {
                        "session": session_id,
                        "forecast": float(forecast),
                        "step": session.step,
                        "drift": session.last_drifted,
                        "policy_update": session.last_update_trigger,
                        "degraded": False,
                    }
                    if seq is not None:
                        session.ack_seq = seq
                        session.ack_response = response
                    if self.config.durable:
                        # Commit point: the acknowledgement below is only
                        # sent once the observation (ledger included) has
                        # hit the spill tier.
                        self.store.sync(session_id)
                    return response
        except SessionCorruptError:
            if not self.config.degraded_mode:
                raise
            return self._observe_degraded(session_id, value, seq)

    # ------------------------------------------------------------------
    # Batched observe: one stacked forward per coalesced micro-batch
    # ------------------------------------------------------------------
    def _count_observe_path(
        self, path: str, reason: Optional[str] = None, n: int = 1
    ) -> None:
        if OBS.enabled and n:
            OBS.registry.counter(
                "repro_serving_batched_observe_total",
                {"path": path, "reason": reason or "-"},
            ).inc(float(n))

    def _observe_batch(self, payloads: List[Tuple]) -> list:
        """Group handler for the micro-batcher's coalesced observes.

        Acquires (pins) and locks every batchable session up front, runs
        one vectorised pool + stacked-actor pass per shape group, and
        scatters the per-session results. Lock-ordering safety: every
        thread that locks a session pins it first, and the store's
        eviction only ever touches *unpinned* sessions, so holding many
        pinned sessions' locks here cannot deadlock against the store
        (and ``_admit_locked`` soft-overshoots capacity rather than
        failing when a whole batch is pinned).

        Requests the stacked pass cannot take run the unchanged serial
        path *after* the batch locks drop, in arrival order: duplicate
        session ids within the batch (lock is not reentrant across
        requests' semantics), acquire failures (missing / corrupt /
        degraded sessions — the serial path owns that failure taxonomy).
        Outcomes are index-aligned; exceptions travel as values.
        """
        outcomes: list = [None] * len(payloads)
        counts: Dict[str, int] = {}
        for sid, _, _ in payloads:
            counts[sid] = counts.get(sid, 0) + 1
        serial: List[Tuple[int, str]] = []
        with contextlib.ExitStack() as stack:
            groups: Dict[tuple, list] = {}
            for index, (sid, value, seq) in enumerate(payloads):
                if counts[sid] > 1:
                    serial.append((index, "same_session"))
                    continue
                try:
                    session = stack.enter_context(self.store.acquire(sid))
                    stack.enter_context(session.lock)
                except BaseException:  # noqa: BLE001 - retried serially
                    serial.append((index, "acquire"))
                    continue
                key = (id(session.pool), session.window, session.n_members)
                groups.setdefault(key, []).append((index, session))
            for members in groups.values():
                self._observe_group(payloads, outcomes, members)
        for index, reason in sorted(serial):
            sid, value, seq = payloads[index]
            self._count_observe_path("fallback", reason)
            try:
                outcomes[index] = self._observe_inner(sid, value, seq)
            except BaseException as err:  # noqa: BLE001 - to the future
                outcomes[index] = err
        return outcomes

    def _observe_group(
        self, payloads: List[Tuple], outcomes: list, members: list
    ) -> None:
        """One shape group of locked sessions → one stacked forward.

        Bit-identity contract: every numerical step either *is* the
        serial code (``prepare_forecast``/``apply_forecast``) or is a
        batched kernel proven bitwise-equal to its serial counterpart
        (``predict_next_batch_with_mask``, ``policy_weights_batch``).
        """
        ready = []
        for index, session in members:
            sid, value, seq = payloads[index]
            try:
                cached = self._check_seq(session, seq, sid)
                if cached is not None:
                    outcomes[index] = cached
                    continue
                session.begin_observe(float(value))
                if session.pool is None:
                    raise ConfigurationError(
                        "matrix-mode session needs an explicit "
                        "prediction_row"
                    )
            except BaseException as err:  # noqa: BLE001 - to the future
                outcomes[index] = err
                continue
            ready.append((index, session))
        if not ready:
            return
        rows = masks = None
        try:
            pool = ready[0][1].pool
            with TRACER.child_span("pool.eval", sessions=len(ready)):
                rows, masks = pool.predict_next_batch_with_mask(
                    [session.history for _, session in ready]
                )
        except BaseException:  # noqa: BLE001 - per-session calls surface it
            rows = None
        prepared = []
        for j, (index, session) in enumerate(ready):
            try:
                if rows is not None:
                    scaled_row, healthy = session.prepare_forecast(
                        rows[j], masks[j]
                    )
                else:
                    values, health = session.pool.predict_next_with_mask(
                        session.history
                    )
                    scaled_row, healthy = session.prepare_forecast(
                        values, health
                    )
                prepared.append((index, session, scaled_row, healthy))
            except BaseException as err:  # noqa: BLE001 - to the future
                outcomes[index] = err
        if not prepared:
            return
        weights = None
        agent_cls = type(prepared[0][1].agent)
        if not getattr(agent_cls, "batchable", False):
            # Stochastic policies (SAC) have no stacked deterministic
            # forward; their sessions take the serial policy call below.
            self._count_observe_path(
                "fallback", "agent_unbatched", n=len(prepared)
            )
        else:
            try:
                forward_start = time.perf_counter()
                with TRACER.child_span(
                    "actor.forward", sessions=len(prepared)
                ):
                    states = np.stack(
                        [session.state for _, session, _, _ in prepared]
                    )
                    params = agent_cls.stack_actor_params(
                        [session.agent.actor for _, session, _, _ in prepared]
                    )
                    weights = agent_cls.policy_weights_batch(states, params)
                if OBS.enabled:
                    # Sub-ms ladder: the stacked forward sits well under
                    # the default grid's 1 ms bucket.
                    OBS.registry.histogram(
                        "repro_actor_forward_seconds", {"path": "batched"},
                        buckets=FAST_BUCKETS,
                    ).observe(time.perf_counter() - forward_start)
            except BaseException:  # noqa: BLE001 - heterogeneous agents
                weights = None
            if weights is not None:
                self._count_observe_path("batched", n=len(prepared))
            else:
                self._count_observe_path(
                    "fallback", "stack", n=len(prepared)
                )
        for j, (index, session, scaled_row, healthy) in enumerate(prepared):
            sid, value, seq = payloads[index]
            try:
                try:
                    w = (
                        weights[j].copy() if weights is not None
                        else session.agent.policy_weights(session.state)
                    )
                    forecast = session.apply_forecast(scaled_row, healthy, w)
                    response = {
                        "session": sid,
                        "forecast": float(forecast),
                        "step": session.step,
                        "drift": session.last_drifted,
                        "policy_update": session.last_update_trigger,
                        "degraded": False,
                    }
                    if seq is not None:
                        session.ack_seq = seq
                        session.ack_response = response
                    if self.config.durable:
                        self.store.sync(sid)
                    outcomes[index] = response
                except SessionCorruptError:
                    # Same conversion the serial path applies.
                    if not self.config.degraded_mode:
                        raise
                    outcomes[index] = self._observe_degraded(
                        sid, value, seq
                    )
            except BaseException as err:  # noqa: BLE001 - to the future
                outcomes[index] = err

    def predict(
        self, session_id: str, *, deadline=None
    ) -> Dict[str, Any]:
        """Peek at the next-step forecast without advancing the session."""
        dl = self._deadline(deadline)

        def run():
            self._admit()
            return self._submit(
                lambda: self._predict_inner(session_id), dl
            )

        return self._timed("predict", run, tenant=session_id)

    def _predict_inner(self, session_id: str) -> Dict[str, Any]:
        try:
            with self.store.acquire(session_id) as session:
                return {
                    "session": session_id,
                    "forecast": float(session.predict()),
                    "step": session.step,
                    "degraded": False,
                }
        except SessionCorruptError:
            if not self.config.degraded_mode:
                raise
            return self._predict_degraded(session_id)

    # ------------------------------------------------------------------
    # Degraded mode: corrupt-checkpoint sessions keep answering
    # ------------------------------------------------------------------
    def _ensemble_average(self, history: np.ndarray) -> float:
        """Uniform average over the healthy pool members' forecasts.

        The policy state is gone with the corrupt checkpoint, so the
        best remaining estimator is the unweighted healthy ensemble —
        the paper's baseline aggregation.
        """
        values, mask = self.bundle.pool.predict_next_with_mask(history)
        values = np.asarray(values, dtype=np.float64)
        usable = np.asarray(mask, dtype=bool) & np.isfinite(values)
        if not usable.any():
            raise ServiceUnavailableError(
                "degraded forecast unavailable: no healthy pool member "
                "produced a finite prediction"
            )
        return float(values[usable].mean())

    def _degraded_state(self, session_id: str):
        degraded = self.store.degraded_session(session_id)
        if degraded is None or degraded.history is None:
            # No sidecar survived either — nothing to forecast from.
            raise SessionCorruptError(session_id)
        return degraded

    def _observe_degraded(
        self, session_id: str, value: float, seq: Optional[int]
    ) -> Dict[str, Any]:
        degraded = self._degraded_state(session_id)
        with degraded.lock:
            cached = self._check_seq(degraded, seq, session_id)
            if cached is not None:
                return cached
            degraded.history = np.append(
                degraded.history, float(value)
            )
            forecast = self._ensemble_average(degraded.history)
            response = {
                "session": session_id,
                "forecast": forecast,
                "step": None,
                "drift": False,
                "policy_update": False,
                "degraded": True,
            }
            if seq is not None:
                degraded.ack_seq = seq
                degraded.ack_response = response
            if self.config.durable:
                self.store.persist_degraded(session_id)
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_serving_degraded_requests_total"
                ).inc()
            return response

    def _predict_degraded(self, session_id: str) -> Dict[str, Any]:
        degraded = self._degraded_state(session_id)
        with degraded.lock:
            forecast = self._ensemble_average(degraded.history)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_serving_degraded_requests_total"
            ).inc()
        return {
            "session": session_id,
            "forecast": forecast,
            "step": None,
            "degraded": True,
        }

    def session_info(self, session_id: str) -> Dict[str, Any]:
        def run():
            try:
                with self.store.acquire(session_id) as session:
                    info = session.describe()
                    info["degraded"] = False
                    return info
            except SessionCorruptError:
                if not self.config.degraded_mode:
                    raise
                degraded = self._degraded_state(session_id)
                with degraded.lock:
                    return {
                        "session": session_id,
                        "degraded": True,
                        "history_length": int(degraded.history.size),
                        "step": None,
                    }

        return self._timed("info", run, tenant=session_id)

    def close_session(self, session_id: str) -> None:
        self._timed(
            "close", lambda: self.store.close(session_id),
            tenant=session_id,
        )

    # ------------------------------------------------------------------
    # Migration hooks (used by the shard runtime's rebalancer)
    # ------------------------------------------------------------------
    def release_session(
        self, session_id: str, *, timeout: float = 5.0
    ) -> Dict[str, Any]:
        """Quiesce + final checkpoint; ownership passes to the caller."""
        return self.store.release(session_id, timeout=timeout)

    def adopt_session(self, session_id: str) -> bool:
        """Register a spill directory migrated into this service's tree."""
        return self.store.adopt(session_id)

    def session_ids(self) -> List[str]:
        """Every session this service answers for (any tier)."""
        return self.store.session_ids()

    def load_stats(self) -> Dict[str, Any]:
        """Cheap load signals for the supervisor's scaling controller."""
        return {
            "queue_depth": self.batcher.depth,
            "sessions": len(self.store),
        }

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        breaker = self.breaker.state.value
        healthy = (
            not self._shutting_down.is_set()
            and self.breaker.state is not BreakerState.OPEN
        )
        return {
            "status": "ok" if healthy else "unavailable",
            "breaker": breaker,
            "shutting_down": self._shutting_down.is_set(),
            "uptime_seconds": round(time.time() - self._started_at, 3),
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "sessions": self.store.stats(),
            "queue_depth": self.batcher.depth,
            "queue_limit": self.batcher.queue_limit,
            "batches": self.batcher.batches,
            "shed": self.batcher.shed,
            "breaker": self.breaker.state.value,
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "tenants": self.tenants.snapshot(),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """This process's registry snapshot (mergeable across workers)."""
        return OBS.registry.snapshot()

    def metrics_text(self) -> str:
        """Prometheus text exposition of this process's registry."""
        return render_prom_text(OBS.registry)

    # ------------------------------------------------------------------
    def shutdown(self) -> Dict[str, Any]:
        """Refuse new work, drain in-flight requests, spill every session.

        Idempotent; returns a summary of what was flushed (also attached
        to the ``service_shutdown`` telemetry event).
        """
        already = self._shutting_down.is_set()
        self._shutting_down.set()
        if already:
            return {"spilled": 0, "repeat": True}
        self.batcher.close()
        spilled = self.store.spill_all()
        summary = {
            "spilled": spilled,
            "sessions": self.store.stats(),
            "batches": self.batcher.batches,
        }
        _LOG.info(
            "service shut down: %d session(s) spilled to disk", spilled
        )
        if OBS.enabled:
            OBS.emit("service_shutdown", **summary)
            OBS.flush()
        if self._owns_tracer:
            TRACER.disable()
        return summary


def _status_label(error: BaseException) -> str:
    """Stable low-cardinality status label for the requests counter."""
    from repro.exceptions import (
        ServiceOverloadedError,
        SessionExistsError,
        SessionNotFoundError,
        WorkerCrashedError,
    )

    if isinstance(error, ServiceOverloadedError):
        return "overloaded"
    if isinstance(error, DeadlineExceededError):
        return "deadline"
    if isinstance(error, SessionCorruptError):
        return "corrupt"
    if isinstance(error, WorkerCrashedError):
        return "worker_crash"
    if isinstance(error, ServiceUnavailableError):
        return "unavailable"
    if isinstance(error, SessionNotFoundError):
        return "not_found"
    if isinstance(error, SessionExistsError):
        return "conflict"
    if isinstance(error, (DataValidationError, ConfigurationError)):
        return "bad_request"
    return "error"
