"""Stdlib JSON-over-HTTP frontend for :class:`ForecastService`.

A thin, dependency-free adapter: every route parses JSON, calls one
service operation, and maps the service's failure taxonomy onto status
codes. All forecasting semantics (admission control, micro-batching,
breaker, metrics) live in the service — the HTTP layer adds nothing but
transport.

Routes
------

==============================================  ======================
``POST   /v1/sessions``                         create a session
``POST   /v1/sessions/<id>/observe``            feed ``y_t``, get forecast
``GET    /v1/sessions/<id>/predict``            peek without advancing
``GET    /v1/sessions/<id>``                    session description
``DELETE /v1/sessions/<id>``                    close the session
``GET    /healthz``                             liveness (200/503)
``GET    /stats``                               service counters
``GET    /metrics``                             Prometheus text format
``POST   /admin/resize``                        grow/shrink the fleet
``POST   /admin/rebalance``                     shed load off a hot shard
``GET    /admin/ring``                          ring + migration state
==============================================  ======================

The ``/admin/*`` routes exist only on the supervised shard runtime
(404 otherwise). Resize body: ``{"shards": <int>, "force"?: bool}``;
rebalance body: ``{"shard"?: <int>, "factor"?: <0..1>, "force"?: bool}``
(no shard picks the heaviest). Both answer 503 while another
resize/rebalance is running or the rebalance breaker is open.

Create body: ``{"session": "id", "history": [..], "mode"?, "interval"?,
"updates_per_trigger"?, "seed"?}``. Observe body: ``{"y": <number>,
"seq"?: <int>, "deadline"?: <seconds>}`` — ``seq`` is the per-session
sequence number making the observe idempotent under retries;
``deadline`` (or the ``X-Deadline-Seconds`` header, body wins) is the
client's remaining end-to-end budget, propagated through every hop.

Status mapping: 400 bad JSON / validation, 404 unknown session, 409
duplicate create, 429 queue full (back off), 503 deadline missed /
breaker open / shutting down / corrupt session state (with a
``Retry-After`` header), 500 anything else. Degraded responses (corrupt
checkpoint served from the ensemble-average fallback) are **200** with
``"degraded": true`` in the body.

Tracing: when the service runs with a ``trace_dir``, every request gets
a root ``http.request`` span. A client may supply its own trace id via
the ``X-Trace-Id`` header (hex, 8–32 chars; malformed ids are ignored
and a fresh trace minted); the effective id is echoed back in the
response's ``X-Trace-Id`` header either way, ready for ``repro trace``.
Behind a :class:`~repro.serving.supervisor.ShardSupervisor`,
``/metrics`` merges per-shard worker registries into one exposition and
``/healthz`` carries per-shard worker state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    ServingError,
    SessionCorruptError,
    SessionExistsError,
    SessionMigratingError,
    SessionNotFoundError,
    WorkerCrashedError,
)
from repro.obs import OBS, get_logger, render_prom_text
from repro.obs.trace import NOOP_TRACE_SPAN, TRACE_ID_HEADER, TRACER
from repro.serving.service import ForecastService

_LOG = get_logger("serving.http")

_MAX_BODY_BYTES = 8 * 1024 * 1024


def _status_for(error: BaseException) -> int:
    # Order matters: the retryable subtypes must be matched before the
    # ServingError catch-all turns them into client errors.
    if isinstance(error, ServiceOverloadedError):
        return 429
    if isinstance(error, (SessionCorruptError, SessionMigratingError)):
        return 503
    if isinstance(error, (DeadlineExceededError, ServiceUnavailableError,
                          WorkerCrashedError)):
        return 503
    if isinstance(error, SessionNotFoundError):
        return 404
    if isinstance(error, SessionExistsError):
        return 409
    if isinstance(error, (DataValidationError, ConfigurationError,
                          ServingError)):
        return 400
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One request; the service reference hangs off the server object."""

    server_version = "repro-serving/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ForecastService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOG.debug("%s %s", self.address_string(), format % args)

    def _ingress(self):
        """Root span of the request's distributed trace.

        Ingress either adopts a (well-formed) client ``X-Trace-Id`` or
        mints a fresh trace; the id is echoed on the response so callers
        can find their timeline with ``repro trace`` either way.
        """
        self._trace_ctx = None
        if not TRACER.enabled:
            return NOOP_TRACE_SPAN
        span = TRACER.span(
            "http.request",
            parent=TRACER.from_headers(self.headers),
            method=self.command,
            path=self.path.split("?", 1)[0],
        )
        self._trace_ctx = span.ctx
        return span

    def _send_json(
        self, status: int, payload: Any, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        ctx = getattr(self, "_trace_ctx", None)
        if ctx is not None:
            self.send_header(TRACE_ID_HEADER, ctx.trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, error: BaseException) -> None:
        status = _status_for(error)
        if status == 500:
            _LOG.error("internal error serving %s: %r", self.path, error)
        payload = {"error": type(error).__name__, "detail": str(error)}
        headers = None
        if isinstance(error, ServiceOverloadedError):
            # Back-off derived by the batcher from its queue drain
            # rate: roughly when the queue will have room again.
            payload["retry_after"] = error.retry_after
            headers = {"Retry-After": f"{error.retry_after:g}"}
        if isinstance(error, (SessionCorruptError, SessionMigratingError)):
            # Typed 503s: the session's state is corrupt (or mid-move
            # to another shard), not the service — tell the client when
            # to retry.
            payload["retry_after"] = error.retry_after
            payload["session"] = error.session_id
            headers = {"Retry-After": f"{error.retry_after:g}"}
        self._send_json(status, payload, headers)

    def _deadline_seconds(self, body: Optional[dict] = None):
        """Client deadline budget: body ``deadline`` wins over the
        ``X-Deadline-Seconds`` header; None when neither is given."""
        if body is not None and "deadline" in body:
            value = body["deadline"]
            if not isinstance(value, (int, float)) or value <= 0:
                raise DataValidationError(
                    "'deadline' must be a positive number of seconds"
                )
            return float(value)
        header = self.headers.get("X-Deadline-Seconds")
        if header:
            try:
                value = float(header)
            except ValueError:
                raise DataValidationError(
                    "X-Deadline-Seconds must be a number"
                ) from None
            if value <= 0:
                raise DataValidationError(
                    "X-Deadline-Seconds must be positive"
                )
            return value
        return None

    def _admin(self, name: str):
        """Resolve an elastic-runtime operation on the backing service.

        ``/admin/*`` routes only exist on the supervised shard runtime;
        for a plain in-process service this returns ``None`` and the
        route answers 404.
        """
        return getattr(self.service, name, None)

    def _admin_unsupported(self) -> None:
        self._send_json(404, {
            "error": "NotFound",
            "detail": "admin routes need the supervised shard runtime "
                      "(serve with --shards)",
        })

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise DataValidationError(
                f"request body too large ({length} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise DataValidationError("request body must be JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as err:
            raise DataValidationError(f"malformed JSON body: {err}") from None

    def _session_route(self) -> Tuple[Optional[str], Optional[str]]:
        """``/v1/sessions/<id>[/<action>]`` → (id, action)."""
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "sessions":
            session_id = parts[2]
            action = parts[3] if len(parts) > 3 else None
            return session_id, action
        return None, None

    # -- methods -------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        with self._ingress():
            try:
                path = self.path.split("?", 1)[0]
                if path == "/v1/sessions":
                    body = self._read_json()
                    if "session" not in body or "history" not in body:
                        raise DataValidationError(
                            "create body needs 'session' and 'history'"
                        )
                    kwargs = {
                        key: body[key]
                        for key in ("mode", "interval", "updates_per_trigger",
                                    "seed")
                        if key in body
                    }
                    info = self.service.create_session(
                        body["session"], body["history"], **kwargs
                    )
                    self._send_json(201, info)
                    return
                if path == "/admin/resize":
                    resize = self._admin("resize")
                    if resize is None:
                        self._admin_unsupported()
                        return
                    body = self._read_json()
                    if "shards" not in body or isinstance(
                        body["shards"], bool
                    ) or not isinstance(body["shards"], int):
                        raise DataValidationError(
                            "resize body needs an integer 'shards'"
                        )
                    self._send_json(200, resize(
                        body["shards"], force=bool(body.get("force", False))
                    ))
                    return
                if path == "/admin/rebalance":
                    rebalance = self._admin("rebalance_shard")
                    if rebalance is None:
                        self._admin_unsupported()
                        return
                    body = self._read_json()
                    shard = body.get("shard")
                    if shard is not None and (
                        isinstance(shard, bool) or not isinstance(shard, int)
                    ):
                        raise DataValidationError(
                            "'shard' must be an integer when given"
                        )
                    kwargs = {"force": bool(body.get("force", False))}
                    if "factor" in body:
                        if not isinstance(body["factor"], (int, float)):
                            raise DataValidationError(
                                "'factor' must be a number"
                            )
                        kwargs["factor"] = float(body["factor"])
                    self._send_json(200, rebalance(shard, **kwargs))
                    return
                session_id, action = self._session_route()
                if session_id is not None and action == "observe":
                    body = self._read_json()
                    if "y" not in body or not isinstance(body["y"], (int, float)):
                        raise DataValidationError(
                            "observe body needs a numeric 'y'"
                        )
                    seq = body.get("seq")
                    if seq is not None and (
                        isinstance(seq, bool) or not isinstance(seq, int)
                    ):
                        raise DataValidationError(
                            "'seq' must be an integer sequence number"
                        )
                    self._send_json(
                        200,
                        self.service.observe(
                            session_id,
                            float(body["y"]),
                            seq=seq,
                            deadline=self._deadline_seconds(body),
                        ),
                    )
                    return
                self._send_json(404, {"error": "NotFound", "detail": self.path})
            except BaseException as err:  # noqa: BLE001 - becomes the response
                self._send_error_json(err)

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        with self._ingress():
            try:
                path = self.path.split("?", 1)[0]
                if path == "/healthz":
                    health = self.service.health()
                    self._send_json(
                        200 if health["status"] == "ok" else 503, health
                    )
                    return
                if path == "/stats":
                    self._send_json(200, self.service.stats())
                    return
                if path == "/metrics":
                    # ForecastService renders its own registry; the
                    # supervisor merges per-shard worker snapshots into
                    # one fleet-wide exposition.
                    metrics_text = getattr(
                        self.service, "metrics_text", None
                    )
                    text = (
                        metrics_text() if metrics_text is not None
                        else render_prom_text(OBS.registry)
                    )
                    body = text.encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if path == "/admin/ring":
                    ring_info = self._admin("ring_info")
                    if ring_info is None:
                        self._admin_unsupported()
                        return
                    self._send_json(200, ring_info())
                    return
                session_id, action = self._session_route()
                if session_id is not None and action == "predict":
                    self._send_json(
                        200,
                        self.service.predict(
                            session_id, deadline=self._deadline_seconds()
                        ),
                    )
                    return
                if session_id is not None and action is None:
                    self._send_json(200, self.service.session_info(session_id))
                    return
                self._send_json(404, {"error": "NotFound", "detail": self.path})
            except BaseException as err:  # noqa: BLE001 - becomes the response
                self._send_error_json(err)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib API
        with self._ingress():
            try:
                session_id, action = self._session_route()
                if session_id is not None and action is None:
                    self.service.close_session(session_id)
                    self._send_json(200, {"closed": session_id})
                    return
                self._send_json(404, {"error": "NotFound", "detail": self.path})
            except BaseException as err:  # noqa: BLE001 - becomes the response
                self._send_error_json(err)


class ForecastHTTPServer:
    """Threaded HTTP server wrapping a :class:`ForecastService` (or a
    :class:`~repro.serving.supervisor.ShardSupervisor` — both expose the
    same operations; build either with
    :func:`~repro.serving.supervisor.make_service`).

    ``port=0`` binds an ephemeral port (the tests use this); read the
    bound address back from :attr:`address`. ``serve_forever`` blocks —
    call :meth:`start` for a background thread instead.
    """

    def __init__(
        self,
        service: ForecastService,
        host: str = "127.0.0.1",
        port: int = 8321,
    ):
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ForecastHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serving-http",
            daemon=True,
        )
        self._thread.start()
        host, port = self.address
        _LOG.info("forecast service listening on http://%s:%d", host, port)
        return self

    def serve_forever(self) -> None:
        host, port = self.address
        _LOG.info("forecast service listening on http://%s:%d", host, port)
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop accepting connections, then shut the service down."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.service.shutdown()
