"""Deterministic fault-injection harness for chaos testing the runtime."""

from repro.testing.faults import (
    FailureSchedule,
    FlakyForecaster,
    NaNForecaster,
    SlowForecaster,
)

__all__ = [
    "FailureSchedule",
    "FlakyForecaster",
    "NaNForecaster",
    "SlowForecaster",
]
