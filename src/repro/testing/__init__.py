"""Deterministic fault-injection harness for chaos testing the runtime."""

from repro.testing.faults import (
    FailureSchedule,
    FlakyForecaster,
    NaNForecaster,
    SimulatedCrash,
    SlowForecaster,
    TornWriter,
    corrupt_all_snapshots,
    truncate_file,
)

__all__ = [
    "FailureSchedule",
    "FlakyForecaster",
    "NaNForecaster",
    "SimulatedCrash",
    "SlowForecaster",
    "TornWriter",
    "corrupt_all_snapshots",
    "truncate_file",
]
