"""Deterministic fault-injection harness for chaos testing the runtime."""

from repro.testing.faults import (
    FailureSchedule,
    FlakyForecaster,
    NaNForecaster,
    SimulatedCrash,
    SlowForecaster,
    TornWriter,
)

__all__ = [
    "FailureSchedule",
    "FlakyForecaster",
    "NaNForecaster",
    "SimulatedCrash",
    "SlowForecaster",
    "TornWriter",
]
