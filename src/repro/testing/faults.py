"""Deterministic fault injection for pool members.

Wrappers that make a healthy forecaster misbehave on a *seedable,
reproducible schedule*, used by the chaos test suite and
``benchmarks/bench_runtime_guards.py`` to exercise the fault-tolerant
runtime (:mod:`repro.runtime`) without any nondeterminism.

Schedules are keyed on the **history length** of the prediction call
(``t = len(history)``), which equals the prequential time index in
rolling protocols. Keying on ``t`` rather than on a call counter makes a
fault idempotent under the guard's retries: a member scheduled to fail
at step ``t`` fails *every* attempt at ``t`` and recovers at ``t + 1``,
so tests can reason about exact quarantine windows.

The storage faults at the bottom (:class:`TornWriter` /
:class:`SimulatedCrash`) target the checkpoint subsystem instead of the
pool: they emulate a process dying mid-write, leaving a torn snapshot
for the restore path to detect and quarantine.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Iterable, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Forecaster
from repro.persistence import PathLike, atomic_write_bytes


class FailureSchedule:
    """A deterministic predicate over prequential step indices.

    Build one with a constructor classmethod:

    - :meth:`at` — fail exactly at the given steps;
    - :meth:`window` — fail for every ``start <= t < stop`` (mid-stream
      outage with recovery);
    - :meth:`after` — fail from ``start`` onwards (permanent death);
    - :meth:`random` — fail each step independently with probability
      ``rate``, reproducibly from ``seed``.
    """

    def __init__(self, steps: Iterable[int] = (),
                 start: Optional[int] = None, stop: Optional[int] = None):
        self._steps = frozenset(int(s) for s in steps)
        self._start = start
        self._stop = stop

    # -- constructors ----------------------------------------------------
    @classmethod
    def at(cls, *steps: int) -> "FailureSchedule":
        return cls(steps=steps)

    @classmethod
    def window(cls, start: int, stop: int) -> "FailureSchedule":
        if stop <= start:
            raise ConfigurationError(
                f"failure window needs stop > start, got [{start}, {stop})"
            )
        return cls(start=start, stop=stop)

    @classmethod
    def after(cls, start: int) -> "FailureSchedule":
        return cls(start=start)

    @classmethod
    def random(cls, rate: float, seed: int = 0,
               horizon: int = 10_000) -> "FailureSchedule":
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        rng = np.random.default_rng(seed)
        hits = np.flatnonzero(rng.random(horizon) < rate)
        return cls(steps=hits.tolist())

    # --------------------------------------------------------------------
    def should_fail(self, t: int) -> bool:
        if t in self._steps:
            return True
        if self._start is not None and t >= self._start:
            return self._stop is None or t < self._stop
        return False

    def __repr__(self) -> str:
        if self._start is not None:
            stop = "∞" if self._stop is None else self._stop
            return f"FailureSchedule(window=[{self._start}, {stop}))"
        return f"FailureSchedule(steps={sorted(self._steps)})"


class _FaultInjector(Forecaster):
    """Shared plumbing: delegate to ``inner``, misbehave on schedule.

    ``rolling_predictions`` is deliberately *not* overridden with the
    inner model's vectorised path: the inherited per-step loop is what
    lets a scheduled fault surface mid-column, exactly as a live failure
    would in the online phase.
    """

    def __init__(self, inner: Forecaster, schedule: FailureSchedule,
                 label: str):
        super().__init__()
        self.inner = inner
        self.schedule = schedule
        self.name = f"{label}:{inner.name}"
        self.min_context = inner.min_context

    def fit(self, series: np.ndarray) -> "_FaultInjector":
        self.inner.fit(series)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> float:
        t = int(np.asarray(history).size)
        if self.schedule.should_fail(t):
            return self._inject(history, t)
        return float(self.inner.predict_next(history))

    def _inject(self, history: np.ndarray, t: int) -> float:
        raise NotImplementedError


class FlakyForecaster(_FaultInjector):
    """Raises a runtime exception on every scheduled step."""

    def __init__(self, inner: Forecaster, schedule: FailureSchedule,
                 exception: type = RuntimeError):
        super().__init__(inner, schedule, "flaky")
        self.exception = exception

    def _inject(self, history: np.ndarray, t: int) -> float:
        raise self.exception(f"injected fault in {self.name} at step {t}")


class NaNForecaster(_FaultInjector):
    """Returns NaN (a silent poisoning fault) on every scheduled step."""

    def __init__(self, inner: Forecaster, schedule: FailureSchedule):
        super().__init__(inner, schedule, "nan")

    def _inject(self, history: np.ndarray, t: int) -> float:
        return float("nan")


class SlowForecaster(_FaultInjector):
    """Sleeps ``delay`` seconds before answering on every scheduled step.

    With a guard whose ``timeout < delay`` this simulates a hung/slow
    member; the prediction itself is still the inner model's (the fault
    is latency, not value corruption).
    """

    def __init__(self, inner: Forecaster, schedule: FailureSchedule,
                 delay: float = 0.05):
        super().__init__(inner, schedule, "slow")
        if delay <= 0:
            raise ConfigurationError(f"delay must be positive, got {delay}")
        self.delay = delay

    def _inject(self, history: np.ndarray, t: int) -> float:
        time.sleep(self.delay)
        return float(self.inner.predict_next(history))


# ----------------------------------------------------------------------
# Storage faults (checkpoint torn-write injection)
# ----------------------------------------------------------------------
class SimulatedCrash(BaseException):
    """Process death emulated by :class:`TornWriter`.

    Deliberately a ``BaseException``: like a real SIGKILL, it must not
    be swallowed by ``except Exception`` recovery paths inside the code
    under test — only the test harness catches it.
    """


class TornWriter:
    """Byte-writer that dies mid-write on a deterministic schedule.

    Drop-in for the ``writer`` seam of
    :class:`repro.runtime.checkpoint.CheckpointManager`. Write calls are
    counted; on a scheduled call index the writer puts only
    ``fraction`` of the bytes at the destination **non-atomically** (no
    temp file, no rename — the torn file is left in place, exactly the
    on-disk state an unbuffered crash can produce on filesystems
    without atomic-rename discipline) and then simulates process death:

    - ``crash="raise"`` (default) raises :class:`SimulatedCrash`;
    - ``crash="sigkill"`` sends ``SIGKILL`` to the current process (the
      chaos smoke job's real-kill mode — nothing below the OS can
      intercept it).

    Unscheduled calls delegate to
    :func:`repro.persistence.atomic_write_bytes`, so the snapshots
    around the torn one are committed normally.
    """

    def __init__(
        self,
        schedule: FailureSchedule,
        fraction: float = 0.5,
        crash: str = "raise",
    ):
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(
                f"fraction must be in [0, 1), got {fraction}"
            )
        if crash not in ("raise", "sigkill"):
            raise ConfigurationError(
                f"crash must be 'raise' or 'sigkill', got {crash!r}"
            )
        self.schedule = schedule
        self.fraction = fraction
        self.crash = crash
        self.calls = 0
        self.torn_paths: list = []

    def __call__(self, path: PathLike, data: bytes) -> Path:
        index = self.calls
        self.calls += 1
        if not self.schedule.should_fail(index):
            return atomic_write_bytes(path, data)
        path = Path(os.fspath(path))
        cut = int(len(data) * self.fraction)
        with open(path, "wb") as handle:
            handle.write(data[:cut])
            handle.flush()
            os.fsync(handle.fileno())
        self.torn_paths.append(path)
        if self.crash == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedCrash(
            f"torn write at call {index}: {path} "
            f"({cut}/{len(data)} bytes landed)"
        )


# ----------------------------------------------------------------------
# On-disk corruption (bit rot / torn-at-rest injection)
# ----------------------------------------------------------------------
def truncate_file(path: PathLike, keep_fraction: float = 0.5) -> Path:
    """Truncate a file in place to a fraction of its bytes.

    Emulates a snapshot (or sidecar) torn *at rest* — e.g. a crash
    during a filesystem journal replay — as opposed to
    :class:`TornWriter`, which tears the write itself. The integrity
    checks downstream (checkpoint SHA-256, npz parsing) must detect the
    damage and quarantine, never crash.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigurationError(
            f"keep_fraction must be in [0, 1), got {keep_fraction}"
        )
    path = Path(os.fspath(path))
    size = path.stat().st_size
    with open(path, "rb+") as handle:
        handle.truncate(int(size * keep_fraction))
    return path


def corrupt_all_snapshots(
    directory: PathLike, kind: str = "session"
) -> int:
    """Flip bytes in every ``<kind>-*.npz`` payload under ``directory``.

    Renders *all* of a session's spill snapshots unrecoverable (the
    manifests' SHA-256 no longer match), forcing the store's strict
    restore down the corrupt path — the setup for degraded-mode tests
    and the chaos harness. Sidecars and quarantine subdirectories are
    untouched. Returns the number of payloads corrupted.
    """
    directory = Path(os.fspath(directory))
    corrupted = 0
    for payload in sorted(directory.glob(f"{kind}-*.npz")):
        data = bytearray(payload.read_bytes())
        if not data:
            continue
        # Flip a byte in the middle: past the zip header, inside the
        # compressed stream the checksum covers.
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))
        corrupted += 1
    return corrupted
